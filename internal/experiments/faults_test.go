package experiments

import (
	"strings"
	"testing"
)

func TestEFaultsDeterministicAcrossWorkers(t *testing.T) {
	cfg := tinyConfig()
	run := func(workers int) string {
		c := cfg
		c.Workers = workers
		r, err := EFaults(c)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	}
	a, b := run(1), run(4)
	if a != b {
		t.Fatalf("EFaults output differs between 1 and 4 workers:\n%s\nvs\n%s", a, b)
	}
}

func TestEFaultsRoutesAroundDegradedDevice(t *testing.T) {
	cfg := tinyConfig()
	r, err := EFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := r.Figure
	if len(f.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(f.Series))
	}
	blind, sleds := f.Series[2], f.Series[3]
	if blind.Name != "degraded blind" || sleds.Name != "degraded with SLEDs" {
		t.Fatalf("series names %q/%q", blind.Name, sleds.Name)
	}
	for i := range blind.Points {
		b, s := blind.Points[i].Mean, sleds.Points[i].Mean
		if s >= b {
			t.Errorf("size %v MB: SLED-guided %v s not below blind %v s on the degraded machine",
				blind.Points[i].X, s, b)
		}
	}
	// Healthy rows pay no routing penalty worth the name over the sweep.
	// (Per-point the modes may differ: at the smallest sizes the full-file
	// delivery estimate can legitimately prefer the larger disk copy even
	// though grep stops at the needle, costing a little.)
	hb, hs := f.Series[0], f.Series[1]
	var blindTotal, sledsTotal float64
	for i := range hb.Points {
		blindTotal += hb.Points[i].Mean
		sledsTotal += hs.Points[i].Mean
	}
	if sledsTotal > blindTotal*1.25 {
		t.Errorf("healthy with SLEDs %v s over the sweep, >25%% above blind %v s", sledsTotal, blindTotal)
	}

	// Fault accounting: the blind degraded cells absorb the retry tail
	// (faults and retries, never EIO — the injector's episodes stay inside
	// the default retry budget); the SLED-guided cells route around the
	// degraded device.
	var sawBlind, sawSleds bool
	for _, c := range r.Counters {
		if c.EIOs != 0 {
			t.Errorf("%s cell at %v MB surfaced %d EIOs, want 0", c.Mode, c.SizeMB, c.EIOs)
		}
		switch c.Mode {
		case "blind":
			sawBlind = true
			if c.DeviceFaults == 0 || c.Retries == 0 || c.RetryWaitSec == 0 {
				t.Errorf("blind cell at %v MB shows no retry tail: %+v", c.SizeMB, c)
			}
		case "sleds":
			sawSleds = true
			if c.DeviceFaults != 0 {
				t.Errorf("SLED-guided cell at %v MB hit the degraded device: %+v", c.SizeMB, c)
			}
		default:
			t.Errorf("unknown counter mode %q", c.Mode)
		}
	}
	if !sawBlind || !sawSleds {
		t.Fatalf("counters missing a mode: %+v", r.Counters)
	}

	// The degradation-aware SLED surface: the demo panels show the same
	// file at full confidence before and graded down after, and pruning
	// drops the degraded copy while keeping the healthy one.
	for _, line := range r.HealthyPanel {
		if strings.Contains(line, "conf=") {
			t.Errorf("healthy panel line %q carries a confidence grade", line)
		}
	}
	degradedConf := false
	for _, line := range r.DegradedPanel {
		if strings.Contains(line, "conf=") {
			degradedConf = true
		}
	}
	if !degradedConf {
		t.Errorf("degraded panel %v shows no confidence grade", r.DegradedPanel)
	}
	if len(r.Kept) != 1 || r.Kept[0] != "/data/local.log" {
		t.Errorf("kept = %v, want [/data/local.log]", r.Kept)
	}
	if len(r.Pruned) != 1 || r.Pruned[0] != "/data/remote.log" {
		t.Errorf("pruned = %v, want [/data/remote.log]", r.Pruned)
	}
}

// TestEFaultsSurvivesGlobalFaultProfile is the stacked-injector case: a
// whole-suite -faults profile interposes a second injector over every
// device, on top of the experiment's own NFS injector. The combined fault
// stream can out-fail the retry policy, so grep may see EIO on one copy —
// the experiment must skip that file and still find the needle on the
// other, never error out.
func TestEFaultsSurvivesGlobalFaultProfile(t *testing.T) {
	cfg := tinyConfig()
	cfg.FaultProfile = "heavy"
	if _, err := EFaults(cfg); err != nil {
		t.Fatalf("EFaults under a stacked heavy profile: %v", err)
	}
}
