package experiments

import (
	"fmt"
	"strings"

	"sleds/internal/stats"
)

// Point is one plotted value: X in the figure's x units (file size in MB
// for most figures), with the sample mean and 90% CI of the measurement.
type Point struct {
	X    float64
	Mean float64
	CI90 float64
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Means extracts the mean values (for speedup ratios).
func (s Series) Means() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Mean
	}
	return out
}

// Figure is one regenerated table or plot.
type Figure struct {
	ID     string // "fig7", "table2", ...
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries per-figure commentary (paper-vs-measured remarks).
	Notes string
}

// Render draws the figure as an aligned text table, series as columns.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %24s", s.Name)
	}
	fmt.Fprintf(&b, "    (%s)\n", f.YLabel)
	if len(f.Series) > 0 {
		for i := range f.Series[0].Points {
			fmt.Fprintf(&b, "%-10.4g", f.Series[0].Points[i].X)
			for _, s := range f.Series {
				p := s.Points[i]
				if p.CI90 > 0 {
					fmt.Fprintf(&b, " %15.4g ± %6.2g", p.Mean, p.CI90)
				} else {
					fmt.Fprintf(&b, " %24.4g", p.Mean)
				}
			}
			b.WriteByte('\n')
		}
	}
	if f.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", f.Notes)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values for external plotting:
// a header row, then one row per x with each series' mean and 90% CI.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		name := strings.ReplaceAll(s.Name, ",", ";")
		fmt.Fprintf(&b, ",%s,%s ci90", name, name)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&b, "%g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(&b, ",%g,%g", s.Points[i].Mean, s.Points[i].CI90)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// pointFrom converts a sample summary to a Point at x.
func pointFrom(x float64, s stats.Summary) Point {
	return Point{X: x, Mean: s.Mean, CI90: s.CI90}
}

// ratioSeries builds the speedup series base/improved, pointwise on means
// (the paper's Figures 8 and 12 divide the two mean curves).
func ratioSeries(name string, base, improved Series) Series {
	ratios := stats.Speedup(base.Means(), improved.Means())
	pts := make([]Point, len(ratios))
	for i, r := range ratios {
		pts[i] = Point{X: base.Points[i].X, Mean: r}
	}
	return Series{Name: name, Points: pts}
}

// mbOf converts a byte count to the MB x-axis unit.
func mbOf(n int64) float64 { return float64(n) / float64(MB) }
