package experiments

import (
	"fmt"
	"io"

	"sleds/internal/device"
	"sleds/internal/iosched"
	"sleds/internal/simclock"
	"sleds/internal/vfs"
	"sleds/internal/workload"
)

// The scale experiment stress-tests the flat event-heap engine: up to
// 10,000 Program streams reading files spread across two dozen queued
// disks. It is not part of the committed golden outputs (it measures the
// engine, not the paper's claims) and runs only when selected explicitly;
// CI's scale-smoke target uses it to prove 10,000-stream runs complete
// and stay byte-identical at any worker count.

// scaleStreams is the stream-count sweep of the scale grid.
var scaleStreams = []int{100, 1000, 10000}

// scaleSchedulers lists the policies the scale grid drives. Deadline adds
// nothing here that sstf does not already stress (the same indexes back
// both).
var scaleSchedulers = []string{"fcfs", "sstf"}

// scaleDisks is the number of queued disks the streams spread across.
const scaleDisks = 24

// scaleFilePages is each stream's file length in pages: small enough that
// 10,000 files boot quickly, large enough that every stream suspends many
// times.
const scaleFilePages = 16

// scalePoint runs one (stream count, scheduler) point: n Program streams,
// each reading its own file front to back in page-sized chunks, files
// assigned round-robin across the disks. Returns virtual seconds to the
// last finish and the engine events processed — both pure virtual-time
// quantities, so the rendered figure is byte-identical at any -workers.
func scalePoint(cfg Config, n int, sched string) (sec float64, events float64, err error) {
	mem := device.NewMem(device.Table2MemConfig(0))
	k := vfs.NewKernel(vfs.Config{
		PageSize:       cfg.PageSize,
		CachePages:     cfg.CachePages,
		Policy:         cfg.Policy,
		ReadaheadPages: cfg.ReadaheadPages,
		MemDevice:      mem,
		JitterSeed:     cfg.Seed,
		JitterFrac:     cfg.JitterFrac,
	})
	k.AttachDevice(mem)
	disks := make([]device.ID, scaleDisks)
	for d := range disks {
		disks[d] = k.AttachDevice(device.NewDisk(device.Table2DiskConfig(device.ID(d + 1))))
	}
	if err := k.MkdirAll("/data"); err != nil {
		return 0, 0, err
	}
	ps := int64(cfg.PageSize)
	size := scaleFilePages * ps
	// One shared content object: every stream greps byte-identical text,
	// so booting 10,000 files costs one generator, not 10,000.
	content := workload.NewText(fileSeed(cfg, "escale", n), size, cfg.PageSize)
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		paths[i] = fmt.Sprintf("/data/s%d", i)
		if _, err := k.Create(paths[i], disks[i%scaleDisks], content); err != nil {
			return 0, 0, err
		}
	}

	e := iosched.NewEngine(k)
	for _, id := range disks {
		e.Queue(id, iosched.NewScheduler(sched))
	}
	for i, path := range paths {
		// Staggered starts desynchronize the streams so the queues see a
		// steady arrival mix instead of n simultaneous bursts.
		start := simclock.Duration(i%97) * 50 * simclock.Microsecond
		e.AddStream(start, scaleReadProg(k, path, cfg.PageSize))
	}
	if err := e.Run(); err != nil {
		return 0, 0, err
	}
	var last simclock.Duration
	for i := 0; i < n; i++ {
		if f := e.FinishTime(iosched.StreamID(i)); f > last {
			last = f
		}
	}
	return float64(last-e.Base()) / float64(simclock.Second), float64(e.Events()), nil
}

// scaleReadProg is a stream state machine that reads path front to back
// in chunkSize reads: the Program-stream analogue of the blocking readers
// the contention experiments run.
func scaleReadProg(k *vfs.Kernel, path string, chunkSize int) iosched.Program {
	var f *vfs.File
	var buf []byte
	return iosched.ProgramFunc(func(h *iosched.Handle, prev iosched.Result) iosched.Op {
		if f == nil {
			var err error
			f, err = k.Open(path)
			if err != nil {
				return iosched.Exit(err)
			}
			buf = make([]byte, chunkSize)
			return iosched.Read(f, buf)
		}
		if prev.Err == io.EOF {
			f.Close()
			return iosched.Exit(nil)
		}
		if prev.Err != nil {
			f.Close()
			return iosched.Exit(prev.Err)
		}
		return iosched.Read(f, buf)
	})
}

// EScale regenerates the engine scale sweep: completion time and engine
// event counts for 100 to 10,000 concurrent streams over 24 queued disks.
func EScale(cfg Config) (Figure, error) {
	cfg.validate()
	nScheds := len(scaleSchedulers)
	series := make([]Series, 2*nScheds)
	for si, sched := range scaleSchedulers {
		series[si] = Series{Name: sched + " seconds"}
		series[nScheds+si] = Series{Name: sched + " events (k)"}
	}
	cols := nScheds
	type result struct{ sec, events float64 }
	results, err := RunGrid(cfg, len(scaleStreams)*cols, func(i int) (result, error) {
		nIdx, si := i/cols, i%cols
		pcfg := cfg.forPoint("escale", nIdx, si)
		sec, events, err := scalePoint(pcfg, scaleStreams[nIdx], scaleSchedulers[si])
		return result{sec, events}, err
	})
	if err != nil {
		return Figure{}, err
	}
	for i, r := range results {
		si := i % cols
		n := float64(scaleStreams[i/cols])
		series[si].Points = append(series[si].Points, Point{X: n, Mean: r.sec})
		series[nScheds+si].Points = append(series[nScheds+si].Points, Point{X: n, Mean: r.events / 1000})
	}
	return Figure{
		ID:     "escale",
		Title:  "engine scale: n streams over 24 queued disks",
		XLabel: "streams",
		YLabel: "seconds to last finish (events: thousands)",
		Series: series,
		Notes:  "Program streams on the flat event heap: one continuation per stream, no goroutine stacks; byte-identical at any -workers",
	}, nil
}
