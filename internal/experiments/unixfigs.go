package experiments

import (
	"fmt"

	"sleds/internal/apps/grepapp"
	"sleds/internal/apps/wcapp"
	"sleds/internal/simclock"
	"sleds/internal/stats"
	"sleds/internal/workload"
)

// needleBase is the grep pattern stem; the text generator's lexicon never
// produces it, so planted matches are the only matches.
const needleBase = "xyzzy"

// textFileOn creates the test file for one experiment point.
func textFileOn(m *Machine, fs string, seed uint64, size int64, pageSize int) (*workload.Content, error) {
	dev, err := m.DeviceByName(fs)
	if err != nil {
		return nil, err
	}
	c := workload.NewText(seed, size, pageSize)
	if _, err := m.K.Create("/data/testfile", dev, c); err != nil {
		return nil, err
	}
	return c, nil
}

// wcSweep runs wc across cfg.Sizes on the named file system, in both
// modes, returning elapsed-time and fault series. Points run on the
// configured worker pool; point i is (size i/2, mode i%2).
func wcSweep(cfg Config, fs string) (timeWithout, timeWith, faultsWithout, faultsWith Series, err error) {
	cfg.validate()
	timeWithout = Series{Name: "without SLEDs"}
	timeWith = Series{Name: "with SLEDs"}
	faultsWithout = Series{Name: "without SLEDs"}
	faultsWith = Series{Name: "with SLEDs"}

	exp := "wc-" + fs
	type wcPoint struct{ time, faults Point }
	points, err := RunGrid(cfg, 2*len(cfg.Sizes), func(i int) (wcPoint, error) {
		sizeIdx, mode := i/2, i%2
		size := cfg.Sizes[sizeIdx]
		pcfg := cfg.forPoint(exp, sizeIdx, mode)
		m, err := BootMachine(pcfg, ProfileUnix)
		if err != nil {
			return wcPoint{}, err
		}
		if _, err := textFileOn(m, fs, fileSeed(cfg, exp, sizeIdx), size, cfg.PageSize); err != nil {
			return wcPoint{}, err
		}
		env := m.Env(mode == 1, cfg.BufSize)
		elapsed, faults, err := measured(pcfg, m, func(int) error {
			_, err := wcapp.Run(env, "/data/testfile")
			return err
		})
		if err != nil {
			return wcPoint{}, err
		}
		x := mbOf(size)
		return wcPoint{pointFrom(x, elapsed.Summarize()), pointFrom(x, faults.Summarize())}, nil
	})
	if err != nil {
		return timeWithout, timeWith, faultsWithout, faultsWith, err
	}
	for i, p := range points {
		if i%2 == 1 {
			timeWith.Points = append(timeWith.Points, p.time)
			faultsWith.Points = append(faultsWith.Points, p.faults)
		} else {
			timeWithout.Points = append(timeWithout.Points, p.time)
			faultsWithout.Points = append(faultsWithout.Points, p.faults)
		}
	}
	return timeWithout, timeWith, faultsWithout, faultsWith, nil
}

// Fig7And8 regenerates Figure 7 (wc execution time over NFS, with and
// without SLEDs, warm cache) and Figure 8 (the speedup ratio of the two
// curves).
func Fig7And8(cfg Config) (Figure, Figure, error) {
	without, with, _, _, err := wcSweep(cfg, "nfs")
	if err != nil {
		return Figure{}, Figure{}, err
	}
	f7 := Figure{
		ID: "fig7", Title: "wc times over NFS, with and without SLEDs, warm cache",
		XLabel: "size MB", YLabel: "seconds",
		Series: []Series{with, without},
	}
	f8 := Figure{
		ID: "fig8", Title: "wc time ratio (speedup) over NFS",
		XLabel: "size MB", YLabel: "improvement ratio",
		Series: []Series{ratioSeries("without/with", without, with)},
	}
	return f7, f8, nil
}

// Fig9 regenerates Figure 9: wc page faults on CD-ROM, with and without
// SLEDs, warm cache.
func Fig9(cfg Config) (Figure, error) {
	_, _, faultsWithout, faultsWith, err := wcSweep(cfg, "cdrom")
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "fig9", Title: "wc page faults on CD-ROM, with and without SLEDs, warm cache",
		XLabel: "size MB", YLabel: "page faults",
		Series: []Series{faultsWith, faultsWithout},
	}, nil
}

// Fig10 regenerates Figure 10: grep for all matches on CD-ROM, with and
// without SLEDs. Matches are sparse (one planted line per ~MB: "kilobytes
// out of megabytes"), so output buffering stays small.
func Fig10(cfg Config) (Figure, error) {
	cfg.validate()
	without := Series{Name: "without SLEDs"}
	with := Series{Name: "with SLEDs"}
	const exp = "grep-all-cdrom"
	points, err := RunGrid(cfg, 2*len(cfg.Sizes), func(i int) (Point, error) {
		sizeIdx, mode := i/2, i%2
		size := cfg.Sizes[sizeIdx]
		m, err := BootMachine(cfg.forPoint(exp, sizeIdx, mode), ProfileUnix)
		if err != nil {
			return Point{}, err
		}
		c, err := textFileOn(m, "cdrom", fileSeed(cfg, exp, sizeIdx), size, cfg.PageSize)
		if err != nil {
			return Point{}, err
		}
		// One planted match per cache-quarter of file, spread evenly; the
		// offsets derive from the mode-independent file seed so both modes
		// search the same planted positions.
		step := cfg.CacheBytes() / 4
		rng := fileSeed(cfg, exp, sizeIdx) | 1
		for off := step / 2; off < size; off += step {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			workload.PlantMatch(c, off+int64(rng%4096), needleBase)
		}
		env := m.Env(mode == 1, cfg.BufSize)
		elapsed, _, err := measured(cfg, m, func(int) error {
			_, err := grepapp.Run(env, "/data/testfile", needleBase, grepapp.Options{})
			return err
		})
		if err != nil {
			return Point{}, err
		}
		return pointFrom(mbOf(size), elapsed.Summarize()), nil
	})
	if err != nil {
		return Figure{}, err
	}
	for i, p := range points {
		if i%2 == 1 {
			with.Points = append(with.Points, p)
		} else {
			without.Points = append(without.Points, p)
		}
	}
	return Figure{
		ID: "fig10", Title: "grep for all matches on CD-ROM, with and without SLEDs, warm cache",
		XLabel: "size MB", YLabel: "seconds",
		Series: []Series{with, without},
		Notes:  "small-file region shows the SLEDs CPU overhead; large files save the cache-fill time",
	}, nil
}

// grepFirstPoint measures grep -q at one size in one mode: each run
// searches for a distinct needle planted at a per-run pseudo-random
// offset, so the match position varies across runs exactly as in the
// paper ("a single match that was placed randomly in the test file").
// pcfg is the point's derived configuration (point-local jitter);
// baseSeed is the sweep's underived base seed. File content and needle
// positions derive from (baseSeed, size) only — mode-independent, so a
// with/without pair reads the same file and the same match positions.
func grepFirstPoint(pcfg Config, baseSeed int64, fs string, size int64, useSLEDs bool, runs int) (*stats.Sample, error) {
	cfg := pcfg
	m, err := BootMachine(cfg, ProfileUnix)
	if err != nil {
		return nil, err
	}
	//sledlint:allow seedflow -- content must derive from (baseSeed, size) only, never the point jitter: a with/without pair has to read identical files
	c, err := textFileOn(m, fs, uint64(baseSeed)+uint64(size), size, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	// Plant one distinct needle per run (plus one for the warm-up).
	rng := uint64(baseSeed)*6364136223846793005 + uint64(size)
	needles := make([]string, runs+1)
	for i := range needles {
		rng = rng*6364136223846793005 + 1442695040888963407
		pos := int64(rng>>11) % size
		needles[i] = fmt.Sprintf("%s%03d", needleBase, i)
		workload.PlantMatch(c, pos, needles[i])
	}

	env := m.Env(useSLEDs, cfg.BufSize)
	elapsed := &stats.Sample{}
	runCfg := cfg
	runCfg.Runs = runs
	sample, _, err := measured(runCfg, m, func(run int) error {
		needle := needles[run+1]
		got, err := grepapp.Run(env, "/data/testfile", needle, grepapp.Options{FirstOnly: true})
		if err != nil {
			return err
		}
		if len(got) != 1 {
			return fmt.Errorf("grep -q found %d matches for %q", len(got), needle)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	*elapsed = *sample
	return elapsed, nil
}

// Fig11And12 regenerates Figure 11 (grep for one match on ext2, with and
// without SLEDs) and Figure 12 (the speedup ratio).
func Fig11And12(cfg Config) (Figure, Figure, error) {
	cfg.validate()
	without := Series{Name: "without SLEDs"}
	with := Series{Name: "with SLEDs"}
	const exp = "grepq-ext2"
	points, err := RunGrid(cfg, 2*len(cfg.Sizes), func(i int) (Point, error) {
		sizeIdx, mode := i/2, i%2
		size := cfg.Sizes[sizeIdx]
		s, err := grepFirstPoint(cfg.forPoint(exp, sizeIdx, mode), cfg.Seed, "ext2", size,
			mode == 1, cfg.Runs)
		if err != nil {
			return Point{}, err
		}
		return pointFrom(mbOf(size), s.Summarize()), nil
	})
	if err != nil {
		return Figure{}, Figure{}, err
	}
	for i, p := range points {
		if i%2 == 1 {
			with.Points = append(with.Points, p)
		} else {
			without.Points = append(without.Points, p)
		}
	}
	f11 := Figure{
		ID: "fig11", Title: "grep for one match on ext2, with and without SLEDs, warm cache",
		XLabel: "size MB", YLabel: "seconds",
		Series: []Series{with, without},
		Notes:  "large error bars without SLEDs reflect cache-position luck, as in the paper",
	}
	f12 := Figure{
		ID: "fig12", Title: "grep one-match speedup on ext2",
		XLabel: "size MB", YLabel: "improvement ratio",
		Series: []Series{ratioSeries("without/with", without, with)},
	}
	return f11, f12, nil
}

// Fig13 regenerates Figure 13: the CDF of grep -q execution time over NFS
// for the mid-sweep file size (the paper's 64 MB point on the full-scale
// sweep).
func Fig13(cfg Config) (Figure, error) {
	cfg.validate()
	size := cfg.Sizes[len(cfg.Sizes)/2-1]
	runs := cfg.CDFRuns
	if runs <= 0 {
		runs = cfg.Runs
	}
	const exp = "grepq-cdf-nfs"
	series, err := RunGrid(cfg, 2, func(i int) (Series, error) {
		useSLEDs := i == 0 // with-SLEDs series renders first
		mode := 0
		if useSLEDs {
			mode = 1
		}
		s, err := grepFirstPoint(cfg.forPoint(exp, 0, mode), cfg.Seed, "nfs", size,
			useSLEDs, runs)
		if err != nil {
			return Series{}, err
		}
		cdf := stats.NewCDF(s.Values())
		name := "without SLEDs"
		if useSLEDs {
			name = "with SLEDs"
		}
		// Rendered as the inverse CDF: x is the fraction of runs, the
		// value is the elapsed seconds at that quantile, so both modes
		// share the x axis (the paper's Figure 13 plots the transpose).
		var pts []Point
		for _, xy := range cdf.Points() {
			pts = append(pts, Point{X: xy[1], Mean: xy[0]})
		}
		return Series{Name: name, Points: pts}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig13",
		Title:  fmt.Sprintf("CDF of grep -q execution time, NFS, %.4g MB file, warm cache", mbOf(size)),
		XLabel: "fraction", YLabel: "seconds at quantile",
		Series: series,
	}, nil
}

// elapsedSeconds is a tiny helper for ad-hoc one-shot timings.
func elapsedSeconds(m *Machine, fn func() error) (float64, error) {
	start := m.K.Clock.Now()
	if err := fn(); err != nil {
		return 0, err
	}
	return float64(m.K.Clock.Now()-start) / float64(simclock.Second), nil
}
