package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"

	"sleds/internal/apps/appenv"
	"sleds/internal/apps/grepapp"
	"sleds/internal/core"
	"sleds/internal/device"
	"sleds/internal/hints"
	"sleds/internal/lmbench"
	"sleds/internal/remote"
	"sleds/internal/simclock"
	"sleds/internal/sledlib"
	"sleds/internal/vfs"
	"sleds/internal/workload"
)

// EHints compares the two information flows of the paper's Figure 1 on
// the canonical workload — a second linear-equivalent pass over a warm
// file twice the cache size:
//
//   - plain:        demand-paged linear read
//   - hints:        linear read with TIP-style prefetch disclosure
//     (overlaps I/O with CPU, cannot exploit the cache
//     state a previous run left behind)
//   - sleds:        pick-library reordering (exploits cache state, no
//     overlap)
//   - sleds+hints:  reordering plus disclosure of the upcoming picks
//
// The workload "computes" at a fixed rate per byte, so both overlap and
// reordering have something to win.
func EHints(cfg Config) (Figure, error) {
	cfg.validate()
	size := 2 * cfg.CacheBytes()
	const cpuRate = 20 * float64(1<<20) // bytes/sec of modelled compute

	type strategy struct {
		name     string
		useSLEDs bool
		useHints bool
	}
	strategies := []strategy{
		{"plain", false, false},
		{"hints", false, true},
		{"sleds", true, false},
		{"sleds+hints", true, true},
	}

	pts, err := RunGrid(cfg, len(strategies), func(i int) (Point, error) {
		st := strategies[i]
		m, err := BootMachine(cfg.forPoint("ehints", i), ProfileUnix)
		if err != nil {
			return Point{}, err
		}
		if _, err := textFileOn(m, "ext2", fileSeed(cfg, "ehints", 0), size, cfg.PageSize); err != nil {
			return Point{}, err
		}
		f, err := m.K.Open("/data/testfile")
		if err != nil {
			return Point{}, err
		}
		io.Copy(io.Discard, f) // warm pass
		m.K.ResetDeviceState()
		m.K.ResetRunStats()

		adv := hints.New(m.K)
		start := m.K.Clock.Now()
		buf := make([]byte, cfg.BufSize)
		if st.useSLEDs {
			picker, err := sledlib.PickInit(m.K, m.Table, f, sledlib.Options{BufSize: cfg.BufSize})
			if err != nil {
				return Point{}, err
			}
			// Pre-collect the schedule so hints can run ahead of reads.
			type adv2 struct{ off, n int64 }
			var plan []adv2
			for {
				off, n, err := picker.NextRead()
				if errors.Is(err, sledlib.ErrFinished) {
					break
				}
				plan = append(plan, adv2{off, n})
			}
			picker.Finish()
			for j, c := range plan {
				if st.useHints {
					for d := 1; d <= hints.Depth && j+d < len(plan); d++ {
						adv.WillNeed(f, plan[j+d].off, plan[j+d].n)
					}
				}
				if _, err := f.ReadAt(buf[:c.n], c.off); err != nil && err != io.EOF {
					return Point{}, err
				}
				m.K.ChargeCPUBytes(c.n, cpuRate)
			}
		} else {
			for off := int64(0); off < size; off += cfg.BufSize {
				n := cfg.BufSize
				if off+n > size {
					n = size - off
				}
				if st.useHints {
					adv.WillNeed(f, off+cfg.BufSize, int64(hints.Depth)*cfg.BufSize)
				}
				if _, err := f.ReadAt(buf[:n], off); err != nil && err != io.EOF {
					return Point{}, err
				}
				m.K.ChargeCPUBytes(n, cpuRate)
			}
		}
		f.Close()
		sec := float64(m.K.Clock.Now()-start) / float64(simclock.Second)
		return Point{X: float64(i), Mean: sec}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ehints",
		Title:  "hints vs SLEDs vs both: second pass over a warm 2x-cache file with per-byte compute",
		XLabel: "strategy", YLabel: "seconds",
		Series: []Series{{Name: "elapsed", Points: pts}},
		Notes:  "x: 0=plain 1=hints(TIP) 2=sleds 3=sleds+hints — the flows are complementary (Figure 1)",
	}, nil
}

// treeGrepStrategy enumerates E-TREEGREP's access strategies.
type treeGrepStrategy int

const (
	treeNameOrder treeGrepStrategy = iota // find -exec grep, alphabetical
	treeFileSets                          // Steere: whole files, cached first
	treeFullSLEDs                         // file sets + intra-file reordering
)

// ETreeGrep is the paper's motivating anecdote measured: "Programmers may
// do find -exec grep while looking for a particular routine... the entry
// may be cached but earlier files may already have been flushed."
// A source tree is grepped three ways after an earlier partial scan
// warmed some of it: alphabetical order (stock find), Steere's file-set
// order (inter-file only), and full SLEDs (inter- plus intra-file).
func ETreeGrep(cfg Config) (Figure, error) {
	cfg.validate()
	// Eight files of half the cache each; a prior scan touched the last
	// three fully and half of the fourth-from-last.
	fileSize := cfg.CacheBytes() / 2
	const numFiles = 8

	run := func(strategy treeGrepStrategy) (sec float64, faults int64, err error) {
		m, err := BootMachine(cfg.forPoint("etreegrep", int(strategy)), ProfileUnix)
		if err != nil {
			return 0, 0, err
		}
		if err := m.K.MkdirAll("/data/src"); err != nil {
			return 0, 0, err
		}
		var paths []string
		for i := 0; i < numFiles; i++ {
			p := fmt.Sprintf("/data/src/file%02d.c", i)
			// File contents are strategy-independent: every strategy greps
			// the identical tree.
			c := workload.NewText(fileSeed(cfg, "etreegrep", i), fileSize, cfg.PageSize)
			workload.PlantMatch(c, fileSize/2, needleBase)
			if _, err := m.K.Create(p, m.Disk, c); err != nil {
				return 0, 0, err
			}
			paths = append(paths, p)
		}
		// The earlier interrupted scan: last three files read fully, the
		// one before half-read (its tail cached).
		for i := numFiles - 3; i < numFiles; i++ {
			f, _ := m.K.Open(paths[i])
			io.Copy(io.Discard, f)
			f.Close()
		}
		f, _ := m.K.Open(paths[numFiles-4])
		buf := make([]byte, fileSize/2)
		f.ReadAt(buf, fileSize/2)
		f.Close()
		m.K.ResetDeviceState()
		m.K.ResetRunStats()
		start := m.K.Clock.Now()

		order := append([]string(nil), paths...)
		useSLEDs := false
		switch strategy {
		case treeNameOrder:
		case treeFileSets:
			order, _ = sledlib.FileSetOrder(m.K, m.Table, paths, core.PlanBest)
		case treeFullSLEDs:
			order, _ = sledlib.FileSetOrder(m.K, m.Table, paths, core.PlanBest)
			useSLEDs = true
		}
		env := m.Env(useSLEDs, cfg.BufSize)
		total := 0
		for _, p := range order {
			matches, err := grepapp.Run(env, p, needleBase, grepapp.Options{})
			if err != nil {
				return 0, 0, err
			}
			total += len(matches)
		}
		if total != numFiles {
			return 0, 0, fmt.Errorf("ETreeGrep: found %d matches, want %d", total, numFiles)
		}
		return float64(m.K.Clock.Now()-start) / float64(simclock.Second), m.K.RunStats().Faults, nil
	}

	type treePoint struct{ time, faults Point }
	points, err := RunGrid(cfg, 3, func(i int) (treePoint, error) {
		st := treeGrepStrategy(i)
		sec, faults, err := run(st)
		if err != nil {
			return treePoint{}, err
		}
		return treePoint{
			Point{X: float64(st), Mean: sec},
			Point{X: float64(st), Mean: float64(faults)},
		}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	var timePts, faultPts []Point
	for _, p := range points {
		timePts = append(timePts, p.time)
		faultPts = append(faultPts, p.faults)
	}
	return Figure{
		ID:     "etreegrep",
		Title:  "grep over a partially cached source tree, by access strategy",
		XLabel: "strategy", YLabel: "seconds / faults",
		Series: []Series{
			{Name: "elapsed seconds", Points: timePts},
			{Name: "hard faults", Points: faultPts},
		},
		Notes: "x: 0=name order (stock find -exec grep) 1=file sets (Steere) 2=full SLEDs (inter+intra file)",
	}, nil
}

// ERemote measures the client/server extension (paper §2: "We propose
// that SLEDs be the vocabulary of communication between clients and
// servers"): grep -q over a remote file whose tail sits in the *server's*
// buffer cache while the client cache is cold. A flat NFS mount cannot
// see the server's state; the SLEDs mount reports it per page, and the
// reordering client finds its match without touching the server's disk.
func ERemote(cfg Config) (EHSMResult, error) {
	cfg.validate()
	size := cfg.Sizes[len(cfg.Sizes)/2-1]

	run := func(mode int) (float64, error) {
		useSLEDs := mode == 1
		mem := device.NewMem(device.Table2MemConfig(0))
		k := vfs.NewKernel(vfs.Config{
			PageSize:   cfg.PageSize,
			CachePages: cfg.CachePages,
			MemDevice:  mem,
			JitterSeed: PointSeed(cfg.Seed, "eremote", 0, mode),
			JitterFrac: cfg.JitterFrac,
		})
		k.AttachDevice(mem)
		rcfg := remote.DefaultConfig()
		rcfg.ServerCachePages = int(size / int64(cfg.PageSize)) // server holds the whole file
		mount, err := remote.NewMount(k, rcfg)
		if err != nil {
			return 0, err
		}
		if err := k.MkdirAll("/net"); err != nil {
			return 0, err
		}
		tab, err := lmbench.Calibrate(k.Clock, mem, k.Devices.All())
		if err != nil {
			return 0, err
		}
		if err := cfg.applySLEDMemo(tab); err != nil {
			return 0, err
		}
		c := workload.NewText(fileSeed(cfg, "eremote", 0), size, cfg.PageSize)
		workload.PlantMatch(c, size-size/4, needleBase)
		if _, err := k.Create("/net/testfile", mount.Device(), c); err != nil {
			return 0, err
		}
		// A previous consumer read the tail half: it is in the server's
		// cache. The client cache is then dropped.
		f, err := k.Open("/net/testfile")
		if err != nil {
			return 0, err
		}
		buf := make([]byte, size/2)
		f.ReadAt(buf, size/2)
		f.Close()
		k.DropCaches()
		k.ResetDeviceState()

		env := &appenv.Env{K: k, Table: tab, UseSLEDs: useSLEDs, BufSize: cfg.BufSize}
		start := k.Clock.Now()
		got, err := grepapp.Run(env, "/net/testfile", needleBase, grepapp.Options{FirstOnly: true})
		if err != nil {
			return 0, err
		}
		if len(got) != 1 {
			return 0, fmt.Errorf("ERemote: found %d matches", len(got))
		}
		return float64(k.Clock.Now()-start) / float64(simclock.Second), nil
	}

	secs, err := RunGrid(cfg, 2, func(mode int) (float64, error) { return run(mode) })
	if err != nil {
		return EHSMResult{}, err
	}
	without, with := secs[0], secs[1]
	res := EHSMResult{WithoutSeconds: without, WithSeconds: with, Speedup: without / with}
	res.Figure = Figure{
		ID: "eremote", Title: "grep -q on a remote file with a server-cached tail",
		XLabel: "mode", YLabel: "seconds",
		Series: []Series{{Name: "elapsed", Points: []Point{
			{X: 0, Mean: without}, {X: 1, Mean: with},
		}}},
		Notes: fmt.Sprintf("x=0 without SLEDs, x=1 with; speedup %.2gx — the client exploits the server's cache state", res.Speedup),
	}
	return res, nil
}

// EAccuracy measures the predictability claim of §5 ("The benefits of
// SLEDs include both useful predictability in I/O execution times..."):
// for each device, the sleds_total_delivery_time estimate of a cold file
// versus the measured time of the linear read, as a signed percentage
// error.
func EAccuracy(cfg Config) (Figure, error) {
	cfg.validate()
	fss := []string{"ext2", "cdrom", "nfs"}
	points, err := RunGrid(cfg, len(fss)*len(cfg.Sizes), func(i int) (Point, error) {
		fs := fss[i/len(cfg.Sizes)]
		sizeIdx := i % len(cfg.Sizes)
		size := cfg.Sizes[sizeIdx]
		exp := "eaccuracy-" + fs
		m, err := BootMachine(cfg.forPoint(exp, sizeIdx), ProfileUnix)
		if err != nil {
			return Point{}, err
		}
		// Place the file mid-device: the table entry models average
		// positioning and a representative zone, so a file at offset
		// zero (no seek, fastest zone) would bias the comparison.
		dev, err := m.DeviceByName(fs)
		if err != nil {
			return Point{}, err
		}
		devSize := m.K.Devices.Get(dev).Info().Size
		if _, err := m.K.ReserveExtent(dev, devSize*2/5); err != nil {
			return Point{}, err
		}
		if _, err := textFileOn(m, fs, fileSeed(cfg, exp, sizeIdx), size, cfg.PageSize); err != nil {
			return Point{}, err
		}
		n, err := m.K.Stat("/data/testfile")
		if err != nil {
			return Point{}, err
		}
		est, err := sledlib.TotalDeliveryTime(m.K, m.Table, n, core.PlanLinear)
		if err != nil {
			return Point{}, err
		}
		f, err := m.K.Open("/data/testfile")
		if err != nil {
			return Point{}, err
		}
		m.K.ResetDeviceState()
		// Page-in only: the estimate covers retrieval, not the
		// user-space copy, so measure via the mapped read path,
		// streaming in large requests as lmbench's bandwidth
		// probe does (per-request overhead is not part of the
		// estimate's model). The buffer is per-run scratch, not
		// part of the measured closure.
		const stream = int64(256 << 10)
		buf := make([]byte, stream)
		actual, err := elapsedSeconds(m, func() error {
			for off := int64(0); off < size; off += stream {
				nn := stream
				if off+nn > size {
					nn = size - off
				}
				if _, err := f.ReadAtMapped(buf[:nn], off); err != nil && err != io.EOF {
					return err
				}
			}
			return nil
		})
		f.Close()
		if err != nil {
			return Point{}, err
		}
		errPct := 100 * (est - actual) / actual
		if math.IsNaN(errPct) || math.IsInf(errPct, 0) {
			return Point{}, fmt.Errorf("EAccuracy: degenerate error for %s at %d", fs, size)
		}
		return Point{X: mbOf(size), Mean: errPct}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	var series []Series
	for fi, fs := range fss {
		series = append(series, Series{
			Name:   fs,
			Points: points[fi*len(cfg.Sizes) : (fi+1)*len(cfg.Sizes)],
		})
	}
	return Figure{
		ID:     "eaccuracy",
		Title:  "delivery-time estimate vs measured cold linear read, signed error",
		XLabel: "size MB", YLabel: "percent error (est-actual)/actual",
		Series: series,
		Notes:  "single-entry-per-device table (paper §4.1); zoned disks make the ext2 estimate size-dependent",
	}, nil
}
