package experiments

import (
	"strings"
	"testing"

	"sleds/internal/stats"
)

func TestFigureRender(t *testing.T) {
	f := Figure{
		ID: "test", Title: "a title", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Mean: 2, CI90: 0.1}, {X: 2, Mean: 3}}},
			{Name: "b", Points: []Point{{X: 1, Mean: 5}, {X: 2, Mean: 7, CI90: 0.2}}},
		},
		Notes: "remark",
	}
	out := f.Render()
	for _, want := range []string{"test", "a title", "±", "remark", "(y)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 5 {
		t.Fatalf("render has %d lines, want 5", got)
	}
}

func TestRatioSeries(t *testing.T) {
	base := Series{Name: "base", Points: []Point{{X: 1, Mean: 10}, {X: 2, Mean: 20}}}
	improved := Series{Name: "imp", Points: []Point{{X: 1, Mean: 2}, {X: 2, Mean: 5}}}
	r := ratioSeries("ratio", base, improved)
	if r.Points[0].Mean != 5 || r.Points[1].Mean != 4 {
		t.Fatalf("ratio = %v", r.Points)
	}
	if r.Points[0].X != 1 || r.Points[1].X != 2 {
		t.Fatalf("ratio X wrong: %v", r.Points)
	}
}

func TestPointFrom(t *testing.T) {
	var s stats.Sample
	s.Add(1)
	s.Add(3)
	p := pointFrom(7, s.Summarize())
	if p.X != 7 || p.Mean != 2 {
		t.Fatalf("pointFrom = %+v", p)
	}
}

func TestMBOf(t *testing.T) {
	if mbOf(MB) != 1 || mbOf(MB/2) != 0.5 {
		t.Fatalf("mbOf wrong")
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{
		XLabel: "size MB",
		Series: []Series{
			{Name: "with, SLEDs", Points: []Point{{X: 8, Mean: 1.5, CI90: 0.1}}},
			{Name: "without", Points: []Point{{X: 8, Mean: 3.25}}},
		},
	}
	got := f.CSV()
	want := "size MB,with; SLEDs,with; SLEDs ci90,without,without ci90\n8,1.5,0.1,3.25,0\n"
	if got != want {
		t.Fatalf("CSV:\n got %q\nwant %q", got, want)
	}
	if empty := (Figure{XLabel: "x"}).CSV(); empty != "x\n" {
		t.Fatalf("empty CSV = %q", empty)
	}
}
