package experiments

import (
	"fmt"
	"strings"

	"sleds/internal/apps/findapp"
	"sleds/internal/apps/gmcapp"
	"sleds/internal/apps/grepapp"
	"sleds/internal/cache"
	"sleds/internal/core"
	"sleds/internal/hsm"
	"sleds/internal/workload"
)

// Fig3Trace reproduces the paper's Figure 3 as a textual trace: the cache
// contents before, during and after two linear passes over a five-block
// file through a three-frame LRU cache, followed by a SLEDs-ordered second
// pass for contrast.
func Fig3Trace() string {
	var b strings.Builder
	b.WriteString("== fig3: movement of data among storage levels during two linear passes ==\n")
	b.WriteString("five-block file, three-frame LRU cache; rows are cache contents (MRU first)\n\n")

	c := cache.New(3, cache.LRU, nil)
	var trace []cache.Key // snapshot scratch, one per render point
	render := func(label string) {
		fmt.Fprintf(&b, "%-24s [", label)
		trace = c.AppendRecencyTrace(trace[:0])
		for i := 0; i < 3; i++ {
			if i < len(trace) {
				fmt.Fprintf(&b, " %d", trace[i].Page)
			} else {
				b.WriteString(" e")
			}
		}
		b.WriteString(" ]\n")
	}
	access := func(p int64) (missed bool) {
		if _, ok := c.Get(cache.Key{File: 1, Page: p}); !ok {
			c.Insert(cache.Key{File: 1, Page: p}, nil, false)
			return true
		}
		return false
	}

	render("before first pass")
	misses := 0
	for p := int64(1); p <= 5; p++ {
		if access(p) {
			misses++
		}
	}
	render("after first pass")
	fmt.Fprintf(&b, "%-24s %d of 5 blocks fetched\n\n", "first pass:", misses)

	misses = 0
	for p := int64(1); p <= 5; p++ {
		if access(p) {
			misses++
		}
	}
	render("after second linear pass")
	fmt.Fprintf(&b, "%-24s %d of 5 blocks fetched (no reuse: the Figure 3 pathology)\n\n", "second pass:", misses)

	// Rebuild the post-first-pass state, then run the SLEDs order.
	c = cache.New(3, cache.LRU, nil)
	for p := int64(1); p <= 5; p++ {
		access(p)
	}
	misses = 0
	for _, p := range []int64{3, 4, 5, 1, 2} {
		if access(p) {
			misses++
		}
	}
	render("after SLEDs-ordered pass")
	fmt.Fprintf(&b, "%-24s %d of 5 blocks fetched (cached tail read first)\n", "SLEDs pass:", misses)
	return b.String()
}

// FindReport is the E-FIND experiment's product.
type FindReport struct {
	Cheap     []findapp.Result // -latency under the threshold
	Expensive []findapp.Result // -latency over the threshold
	Threshold string
	Figure    Figure
}

// EFind demonstrates §5.2's find -latency pruning on a tree spanning
// disk, NFS and tape, with one file warmed into RAM: the cheap set must
// be exactly the cached file, and the expensive set must include all
// tape-resident data.
func EFind(cfg Config) (FindReport, error) {
	cfg.validate()
	m, err := BootMachine(cfg.forPoint("efind"), ProfileUnix)
	if err != nil {
		return FindReport{}, err
	}
	size := cfg.Sizes[0]
	for _, dir := range []string{"/data/src", "/data/archive"} {
		if err := m.K.MkdirAll(dir); err != nil {
			return FindReport{}, err
		}
	}
	mk := func(path, fs string, seed uint64) error {
		dev, err := m.DeviceByName(fs)
		if err != nil {
			return err
		}
		_, err = m.K.Create(path, dev, workload.NewText(seed, size, cfg.PageSize))
		return err
	}
	files := []struct {
		path, fs string
	}{
		{"/data/src/hot.c", "ext2"},
		{"/data/src/cold.c", "ext2"},
		{"/data/src/remote.c", "nfs"},
		{"/data/archive/run1.dat", "tape"},
		{"/data/archive/run2.dat", "tape"},
	}
	for i, f := range files {
		if err := mk(f.path, f.fs, fileSeed(cfg, "efind", i)); err != nil {
			return FindReport{}, err
		}
	}
	// Warm hot.c fully into RAM.
	hot, err := m.K.Open("/data/src/hot.c")
	if err != nil {
		return FindReport{}, err
	}
	buf := make([]byte, size)
	hot.ReadAt(buf, 0)
	hot.Close()

	// Threshold: midway between the estimated delivery time of a fully
	// cached file of this size and of a disk-resident one, so the split
	// is scale-independent.
	memE, _ := m.Table.Memory()
	diskE, _ := m.Table.Device(m.Disk)
	cachedEst := memE.Latency + float64(size)/memE.Bandwidth
	diskEst := diskE.Latency + float64(size)/diskE.Bandwidth
	thresholdSec := (cachedEst + diskEst) / 2
	threshold := fmt.Sprintf("under %.3gs", thresholdSec)
	cheapPred := findapp.LatencyPred{Op: findapp.OpLess, Seconds: thresholdSec, Unit: 1}
	expensivePred := findapp.LatencyPred{Op: findapp.OpMore, Seconds: thresholdSec, Unit: 1}
	env := m.Env(true, cfg.BufSize)
	cheap, err := findapp.Run(env, "/data", findapp.Options{Latency: &cheapPred, Plan: core.PlanLinear, FilesOnly: true})
	if err != nil {
		return FindReport{}, err
	}
	expensive, err := findapp.Run(env, "/data", findapp.Options{Latency: &expensivePred, Plan: core.PlanLinear, FilesOnly: true})
	if err != nil {
		return FindReport{}, err
	}

	fig := Figure{
		ID: "efind", Title: "find -latency pruning across disk, NFS and tape",
		XLabel: "file", YLabel: "estimated delivery seconds",
	}
	var pts []Point
	for i, r := range expensive {
		pts = append(pts, Point{X: float64(i), Mean: r.Seconds})
	}
	fig.Series = []Series{{Name: "estimated delivery (expensive set)", Points: pts}}
	return FindReport{Cheap: cheap, Expensive: expensive, Threshold: threshold, Figure: fig}, nil
}

// EGmc produces the gmc properties panel for a half-cached file — the
// report-latency use of SLEDs (§3.3, Figure 6).
func EGmc(cfg Config) (gmcapp.Report, error) {
	cfg.validate()
	m, err := BootMachine(cfg.forPoint("egmc"), ProfileUnix)
	if err != nil {
		return gmcapp.Report{}, err
	}
	size := cfg.Sizes[len(cfg.Sizes)/2]
	if _, err := textFileOn(m, "ext2", fileSeed(cfg, "egmc", 0), size, cfg.PageSize); err != nil {
		return gmcapp.Report{}, err
	}
	f, err := m.K.Open("/data/testfile")
	if err != nil {
		return gmcapp.Report{}, err
	}
	defer f.Close()
	// Read the second half so its pages are resident.
	buf := make([]byte, size/2)
	f.ReadAt(buf, size/2)
	return gmcapp.Properties(m.Env(true, cfg.BufSize), "/data/testfile")
}

// EHSMResult carries the HSM extension experiment's measurements.
type EHSMResult struct {
	WithoutSeconds float64
	WithSeconds    float64
	Speedup        float64
	Figure         Figure
}

// EHSM measures the paper's prediction that SLEDs gains are much larger
// on hierarchical storage: grep -q over a tape-resident file whose tail
// has been staged to disk and partially cached in RAM. Without SLEDs the
// search reads linearly from the tape head; with SLEDs it reads the
// RAM/disk-staged tail first and finds the match without touching tape.
func EHSM(cfg Config) (EHSMResult, error) {
	cfg.validate()
	size := cfg.Sizes[len(cfg.Sizes)/2-1]

	run := func(mode int) (float64, error) {
		useSLEDs := mode == 1
		m, err := BootMachine(cfg.forPoint("ehsm", 0, mode), ProfileUnix)
		if err != nil {
			return 0, err
		}
		stageBlock := int64(cfg.PageSize) * 16
		if _, err := hsm.New(m.K, hsm.Config{
			Tape:      m.Tape,
			Disk:      m.Disk,
			BlockSize: stageBlock,
			Capacity:  size, // stage can hold the whole file
		}); err != nil {
			return 0, err
		}
		c, err := textFileOn(m, "tape", fileSeed(cfg, "ehsm", 0), size, cfg.PageSize)
		if err != nil {
			return 0, err
		}
		// The match sits in the tail, which a previous consumer staged.
		workload.PlantMatch(c, size-size/4, needleBase)
		f, err := m.K.Open("/data/testfile")
		if err != nil {
			return 0, err
		}
		buf := make([]byte, size/2)
		f.ReadAt(buf, size/2) // stage + cache the tail
		f.Close()
		m.K.ResetDeviceState()

		env := m.Env(useSLEDs, cfg.BufSize)
		return elapsedSeconds(m, func() error {
			got, err := grepapp.Run(env, "/data/testfile", needleBase, grepapp.Options{FirstOnly: true})
			if err != nil {
				return err
			}
			if len(got) != 1 {
				return fmt.Errorf("EHSM: found %d matches", len(got))
			}
			return nil
		})
	}

	secs, err := RunGrid(cfg, 2, func(mode int) (float64, error) { return run(mode) })
	if err != nil {
		return EHSMResult{}, err
	}
	without, with := secs[0], secs[1]
	res := EHSMResult{WithoutSeconds: without, WithSeconds: with, Speedup: without / with}
	res.Figure = Figure{
		ID: "ehsm", Title: "grep -q on a tape-resident file with a staged tail (HSM extension)",
		XLabel: "mode", YLabel: "seconds",
		Series: []Series{
			{Name: "elapsed", Points: []Point{
				{X: 0, Mean: without},
				{X: 1, Mean: with},
			}},
		},
		Notes: fmt.Sprintf("x=0 without SLEDs, x=1 with SLEDs; speedup %.0fx — the HSM regime the paper predicts", res.Speedup),
	}
	return res, nil
}
