package experiments

import (
	"fmt"

	"sleds/internal/apps/appenv"
	"sleds/internal/core"
	"sleds/internal/device"
	"sleds/internal/faults"
	"sleds/internal/lmbench"
	"sleds/internal/simclock"
	"sleds/internal/stats"
	"sleds/internal/vfs"
)

// Profile selects which of the paper's two test machines to model.
type Profile int

// Machine profiles.
const (
	// ProfileUnix is the Table 2 machine (Unix utility experiments).
	ProfileUnix Profile = iota
	// ProfileLHEA is the Table 3 machine (LHEASOFT experiments): faster
	// memory, slower disk.
	ProfileLHEA
)

// Machine is one booted simulated machine with a calibrated sleds table.
type Machine struct {
	K     *vfs.Kernel
	Table *core.Table
	Mem   device.Device
	Disk  device.ID
	CDROM device.ID
	NFS   device.ID
	Tape  device.ID

	// Injectors maps device IDs to the fault injectors interposed over
	// them (empty on a healthy machine).
	Injectors map[device.ID]*faults.Injector
}

// BootMachine builds and calibrates a machine for the given profile.
func BootMachine(cfg Config, profile Profile) (*Machine, error) {
	cfg.validate()
	var memCfg device.MemConfig
	var diskCfg device.DiskConfig
	switch profile {
	case ProfileUnix:
		memCfg = device.Table2MemConfig(0)
		diskCfg = device.Table2DiskConfig(1)
	case ProfileLHEA:
		memCfg = device.Table3MemConfig(0)
		diskCfg = device.Table3DiskConfig(1)
	default:
		return nil, fmt.Errorf("experiments: unknown profile %d", profile)
	}
	mem := device.NewMem(memCfg)
	k := vfs.NewKernel(vfs.Config{
		PageSize:       cfg.PageSize,
		CachePages:     cfg.CachePages,
		Policy:         cfg.Policy,
		ReadaheadPages: cfg.ReadaheadPages,
		MemDevice:      mem,
		JitterSeed:     cfg.Seed,
		JitterFrac:     cfg.JitterFrac,
	})
	k.AttachDevice(mem)
	m := &Machine{K: k, Mem: mem}
	m.Disk = k.AttachDevice(device.NewDisk(diskCfg))
	m.CDROM = k.AttachDevice(device.NewCDROM(device.DefaultCDROMConfig(2)))
	m.NFS = k.AttachDevice(device.NewNFS(device.DefaultNFSConfig(3)))
	m.Tape = k.AttachDevice(device.NewTapeLibrary(device.DefaultTapeLibraryConfig(4)))
	if err := k.MkdirAll("/data"); err != nil {
		return nil, err
	}
	tab, err := lmbench.Calibrate(k.Clock, mem, k.Devices.All())
	if err != nil {
		return nil, err
	}
	if err := cfg.applySLEDMemo(tab); err != nil {
		return nil, err
	}
	m.Table = tab
	// Every device fault the kernel's retry loop observes feeds the
	// table's health state, degrading that device's SLED estimates.
	k.SetFaultObserver(func(f *device.Fault) {
		tab.ObserveFault(f.Dev, f.Extra, k.Clock.Now())
	})
	// Global fault injection (make faults-smoke, sledsbench -faults) wraps
	// every non-memory device AFTER calibration, so the table holds the
	// healthy estimates injection then degrades — as on a real machine,
	// where lmbench ran before the hardware started failing.
	if cfg.FaultProfile != "" && cfg.FaultProfile != "off" {
		for _, id := range []device.ID{m.Disk, m.CDROM, m.NFS, m.Tape} {
			fcfg, ok := faults.ProfileConfig(cfg.FaultProfile, PointSeed(cfg.Seed, "faults", int(id)))
			if !ok {
				return nil, fmt.Errorf("experiments: unknown fault profile %q", cfg.FaultProfile)
			}
			m.InjectFaults(id, fcfg)
		}
	}
	return m, nil
}

// InjectFaults interposes a fault injector over the registered device
// (device.Registry.Replace) and returns it for stats inspection. Call
// only after calibration: probes must measure the healthy device.
func (m *Machine) InjectFaults(id device.ID, fcfg faults.Config) *faults.Injector {
	wrapped, inj := faults.Wrap(m.K.Devices.Get(id), fcfg)
	m.K.Devices.Replace(id, wrapped)
	if m.Injectors == nil {
		m.Injectors = make(map[device.ID]*faults.Injector)
	}
	m.Injectors[id] = inj
	return inj
}

// DeviceByName maps the experiment file-system names to devices.
func (m *Machine) DeviceByName(name string) (device.ID, error) {
	switch name {
	case "ext2":
		return m.Disk, nil
	case "cdrom":
		return m.CDROM, nil
	case "nfs":
		return m.NFS, nil
	case "tape":
		return m.Tape, nil
	default:
		return 0, fmt.Errorf("experiments: unknown file system %q", name)
	}
}

// Env builds an application environment on this machine.
func (m *Machine) Env(useSLEDs bool, bufSize int64) *appenv.Env {
	return &appenv.Env{K: m.K, Table: m.Table, UseSLEDs: useSLEDs, BufSize: bufSize}
}

// measured runs fn once discarded (cache warm-up) and then cfg.Runs times,
// returning samples of elapsed virtual seconds and of hard fault counts.
// Between runs, cache state is deliberately carried (the paper's
// methodology); device mechanical state is reset so positioning history
// does not leak across runs.
func measured(cfg Config, m *Machine, fn func(run int) error) (elapsed, faults *stats.Sample, err error) {
	elapsed, faults = &stats.Sample{}, &stats.Sample{}
	for run := -1; run < cfg.Runs; run++ {
		m.K.ResetDeviceState()
		m.K.ResetRunStats()
		start := m.K.Clock.Now()
		if err := fn(run); err != nil {
			return nil, nil, err
		}
		if run < 0 {
			continue // warm-up, discarded
		}
		sec := float64(m.K.Clock.Now()-start) / float64(simclock.Second)
		elapsed.Add(sec)
		faults.Add(float64(m.K.RunStats().Faults))
	}
	return elapsed, faults, nil
}
