package experiments

import (
	"strings"
	"testing"
)

// TestETraceWinAndLossClasses pins the experiment's headline shape at tiny
// scale: SLED-guided replay beats blind replay by at least 1.3x on the
// olap class (cached tails consumed before eviction), loses on oltp (the
// gather window delays cache hits), and leaves the bursty makespan
// untouched (simultaneous arrivals give the gate nothing to wait for).
func TestETraceWinAndLossClasses(t *testing.T) {
	r, err := ETrace(tinyConfig(), "olap", "oltp", "bursty")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3*len(etraceSchedulers) {
		t.Fatalf("%d rows, want %d", len(r.Rows), 3*len(etraceSchedulers))
	}
	for _, row := range r.Rows {
		switch row.Class {
		case "olap":
			if row.Speedup < 1.3 {
				t.Errorf("olap/%s: SLED speedup %.3g, want >= 1.3", row.Sched, row.Speedup)
			}
			if row.MakespanSpeedup < 1.1 {
				t.Errorf("olap/%s: makespan speedup %.3g, want > 1.1", row.Sched, row.MakespanSpeedup)
			}
		case "oltp":
			if row.Speedup >= 1 {
				t.Errorf("oltp/%s: SLED speedup %.3g, want < 1 (gather delay is pure loss)", row.Sched, row.Speedup)
			}
		case "bursty":
			if row.MakespanSpeedup < 0.95 || row.MakespanSpeedup > 1.05 {
				t.Errorf("bursty/%s: makespan speedup %.3g, want ~1", row.Sched, row.MakespanSpeedup)
			}
		}
	}
}

func TestETraceRejectsUnknownClass(t *testing.T) {
	_, err := ETrace(tinyConfig(), "tpcc")
	if err == nil {
		t.Fatal("unknown class accepted")
	}
	if !strings.Contains(err.Error(), "olap") {
		t.Fatalf("error %q does not list the valid classes", err)
	}
}

// TestETraceDeterministicAcrossWorkers renders the full grid at 1 and 4
// workers; the output must be byte-identical.
func TestETraceDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full etrace grid in -short mode")
	}
	var out [2]string
	for i, w := range []int{1, 4} {
		c := tinyConfig()
		c.Workers = w
		r, err := ETrace(c)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r.Render()
	}
	if out[0] != out[1] {
		t.Fatalf("ETrace output differs between 1 and 4 workers:\n%s\nvs\n%s", out[0], out[1])
	}
}

// TestETraceSubsetStable checks that a class's cells do not depend on
// which subset it is selected in (seeds derive from canonical indices).
func TestETraceSubsetStable(t *testing.T) {
	full, err := ETrace(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	olap, err := ETrace(tinyConfig(), "olap")
	if err != nil {
		t.Fatal(err)
	}
	var fullOlap []ETraceRow
	for _, row := range full.Rows {
		if row.Class == "olap" {
			fullOlap = append(fullOlap, row)
		}
	}
	if len(fullOlap) != len(olap.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(fullOlap), len(olap.Rows))
	}
	for i := range olap.Rows {
		if olap.Rows[i] != fullOlap[i] {
			t.Fatalf("olap row %d differs between subset and full runs:\n%+v\nvs\n%+v",
				i, olap.Rows[i], fullOlap[i])
		}
	}
}
