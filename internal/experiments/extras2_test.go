package experiments

import (
	"math"
	"testing"
)

func TestEHints(t *testing.T) {
	f, err := EHints(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts := f.Series[0].Points
	if len(pts) != 4 {
		t.Fatalf("want 4 strategies, got %d", len(pts))
	}
	plain, hinted, sleds, both := pts[0].Mean, pts[1].Mean, pts[2].Mean, pts[3].Mean

	// Hints overlap I/O with compute: faster than plain.
	if hinted >= plain {
		t.Errorf("hints (%v) not faster than plain (%v)", hinted, plain)
	}
	// SLEDs exploit leftover cache state: also faster than plain, and on
	// this warm-cache workload better than hints alone (hints still read
	// the whole file from disk).
	if sleds >= plain {
		t.Errorf("sleds (%v) not faster than plain (%v)", sleds, plain)
	}
	if sleds >= hinted {
		t.Errorf("sleds (%v) not faster than hints alone (%v) on a warm cache", sleds, hinted)
	}
	// The flows are complementary: combining them wins overall.
	if both >= sleds {
		t.Errorf("sleds+hints (%v) not faster than sleds alone (%v)", both, sleds)
	}
	if both >= plain || both >= hinted {
		t.Errorf("combined (%v) not the fastest: plain %v hints %v sleds %v", both, plain, hinted, sleds)
	}
}

func TestETreeGrep(t *testing.T) {
	f, err := ETreeGrep(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	times := f.Series[0].Points
	faults := f.Series[1].Points
	nameT, setsT, sledsT := times[0].Mean, times[1].Mean, times[2].Mean
	nameF, setsF, sledsF := faults[0].Mean, faults[1].Mean, faults[2].Mean

	// File-set ordering (cached files first) beats name order.
	if setsT >= nameT || setsF >= nameF {
		t.Errorf("file sets (%.3gs/%v faults) not better than name order (%.3gs/%v)",
			setsT, setsF, nameT, nameF)
	}
	// Full SLEDs additionally exploit the half-cached file: at least as
	// good as file sets on faults, and strictly better than name order.
	if sledsF > setsF {
		t.Errorf("full SLEDs faults (%v) above file sets (%v)", sledsF, setsF)
	}
	if sledsT >= nameT {
		t.Errorf("full SLEDs (%v) not faster than name order (%v)", sledsT, nameT)
	}
}

func TestEAccuracy(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = cfg.Sizes[:4] // accuracy needs only a few points
	f, err := EAccuracy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("want 3 device series")
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if math.Abs(p.Mean) > 35 {
				t.Errorf("%s estimate off by %.1f%% at %.3g MB — the single-entry table should do better",
					s.Name, p.Mean, p.X)
			}
		}
	}
}

func TestERemote(t *testing.T) {
	r, err := ERemote(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The SLEDs client reads the server-cached tail first and finds the
	// match there; the flat client drags the head off the server's disk.
	if r.Speedup < 2 {
		t.Errorf("remote speedup %v, want >= 2", r.Speedup)
	}
	if r.WithSeconds >= r.WithoutSeconds {
		t.Errorf("with (%v) not below without (%v)", r.WithSeconds, r.WithoutSeconds)
	}
}
