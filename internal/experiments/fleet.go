package experiments

import (
	"fmt"
	"strings"

	"sleds/internal/device"
	"sleds/internal/faults"
	"sleds/internal/fleet"
	"sleds/internal/iosched"
	"sleds/internal/lmbench"
	"sleds/internal/simclock"
	"sleds/internal/stats"
	"sleds/internal/trace"
	"sleds/internal/vfs"
)

// The efleet experiment measures the fleet tier: N replicated file
// servers behind the client-side SLED selector, under three fleet-scale
// scenarios, each driven by rr (blind round-robin), sled (SLED-guided
// selection with demotion and probe-back), and hedge (sled plus hedged
// reads). Every cell of a scenario replays the identical per-stream read
// schedule on an identically seeded machine — only the routing policy
// differs — and reports the per-read virtual-time latency distribution.
//
//   - hotspot: Zipf-skewed reads over the replicated file. The replicas'
//     server caches individually hold a fraction of the file, but the
//     fleet in aggregate holds all of it — if each region's reads keep
//     landing on the replica that already cached it. SLED selection does
//     exactly that (the estimate folds in the server-cached fraction);
//     blind rotation scatters each region over all replicas and pays the
//     server disk again and again.
//   - degraded: one replica times out on every request (the paper's NFS
//     timeout class, 1.1 s). Rotation keeps feeding it — a quarter of
//     blind traffic eats the timeout and convoys behind it. SLED demotes
//     the replica on the first observed fault and routes around it,
//     paying only the probe-back cadence; hedged reads mask even the
//     probes, so the timeout disappears from the latency tail entirely.
//   - flashcrowd: every stream arrives almost at once, hammering a hot
//     region that one replica has cached. Affinity alone would melt that
//     replica; the load term in the SLED estimate (queue depth at
//     selection time) spills the crowd across the fleet as the favorite's
//     queue builds.

// efleetScenarios lists the scenarios in render order.
var efleetScenarios = []string{"hotspot", "degraded", "flashcrowd"}

// efleetPolicies lists the routing policies every scenario compares.
var efleetPolicies = []fleet.Policy{fleet.PolicyRR, fleet.PolicySLED, fleet.PolicySLEDHedge}

// Fleet shape: 4 replicas; each server caches serverCachePages pages —
// a quarter of the replicated file, so the fleet in aggregate can hold
// all of it but no single replica can.
const (
	efleetReplicas         = 4
	efleetServerCachePages = 64
	efleetFilePages        = 256
	efleetRecordPages      = 4 // one read = 4 pages
	efleetReadsPerStream   = 4
	efleetProbeEvery       = 64
)

// efleetStreams scales the stream population with the configuration:
// paper scale exercises the selector at fleet population (thousands of
// concurrent Program streams); quick scale keeps CI and the test gates
// fast with the same dynamics.
func efleetStreams(cfg Config) int {
	if cfg.CacheBytes() >= 8*MB {
		return 2000
	}
	return 400
}

// efleetFleetConfig is the fleet the experiment boots: defaults, with
// the experiment's server cache sizing and probe cadence. replicas <= 0
// selects the default fleet width.
func efleetFleetConfig(replicas int) fleet.Config {
	fc := fleet.DefaultConfig()
	if replicas <= 0 {
		replicas = efleetReplicas
	}
	fc.Replicas = replicas
	fc.Server.ServerCachePages = efleetServerCachePages
	fc.ProbeEvery = efleetProbeEvery
	return fc
}

// efleetScenario is one scenario's shape: stream arrival stagger, think
// time between a stream's reads, the record-index distribution, and the
// perturbation (fault injection, cache pre-warm) it applies.
type efleetScenario struct {
	name    string
	stagger simclock.Duration // interarrival of stream starts
	think   simclock.Duration // think time between a stream's reads
	// records draws the per-read record indexes for all streams.
	records func(rng *trace.RNG, streams int) [][]int
	// injectReplica0, when set, wraps replica 0's registered device in a
	// fault injector (under the engine queue) with this config.
	injectReplica0 *faults.Config
	// warmReplica0Records pre-warms replica 0's server cache with the
	// first n records of the file before the run.
	warmReplica0Records int
}

// efleetScenarioSpec returns the named scenario's shape. The fault seed
// varies per point via cfg.
func efleetScenarioSpec(name string, pcfg Config) efleetScenario {
	records := efleetFilePages / efleetRecordPages
	switch name {
	case "hotspot":
		return efleetScenario{
			name:    name,
			stagger: 2 * simclock.Millisecond,
			think:   5 * simclock.Millisecond,
			records: func(rng *trace.RNG, streams int) [][]int {
				z := trace.NewZipf(records, 1.1)
				return efleetDraw(rng, streams, func(r *trace.RNG) int { return z.Sample(r) })
			},
		}
	case "degraded":
		return efleetScenario{
			name:    name,
			stagger: 5 * simclock.Millisecond,
			think:   10 * simclock.Millisecond,
			records: func(rng *trace.RNG, streams int) [][]int {
				return efleetDraw(rng, streams, func(r *trace.RNG) int { return int(r.Int64n(int64(records))) })
			},
			injectReplica0: &faults.Config{
				Seed:           PointSeed(pcfg.Seed, "efleet-inj"),
				PFault:         1,
				MaxConsecutive: 1,
			},
		}
	case "flashcrowd":
		hot := 8
		return efleetScenario{
			name:    name,
			stagger: 50 * simclock.Microsecond,
			think:   simclock.Millisecond,
			records: func(rng *trace.RNG, streams int) [][]int {
				z := trace.NewZipf(hot, 0.8)
				return efleetDraw(rng, streams, func(r *trace.RNG) int { return z.Sample(r) })
			},
			warmReplica0Records: hot,
		}
	default:
		panic(fmt.Sprintf("experiments: unknown efleet scenario %q", name)) //sledlint:allow panicpath -- driver-code misuse, not a simulation outcome
	}
}

// efleetDraw fills the per-stream, per-read record table from one draw
// function on one seeded stream.
func efleetDraw(rng *trace.RNG, streams int, draw func(*trace.RNG) int) [][]int {
	out := make([][]int, streams)
	for s := range out {
		recs := make([]int, efleetReadsPerStream)
		for r := range recs {
			recs[r] = draw(rng)
		}
		out[s] = recs
	}
	return out
}

// efleetCell is the measurement of one (scenario, policy) point.
type efleetCell struct {
	meanMs, p50Ms, p99Ms float64
	faults               int // faulted completions absorbed by failover
	hedged               int // reads whose hedge deadline fired
	probes               int64
	errs                 int // reads that exhausted their retry budget
}

// EFleetRow is one rendered row: a scenario under one policy.
type EFleetRow struct {
	Scenario string
	Policy   string
	Cell     efleetCell
}

// EFleetReport is the efleet experiment's product.
type EFleetReport struct {
	Replicas int
	Streams  int
	Rows     []EFleetRow
}

// efleetStream drives one stream's reads as a Program: StartRead/Step
// per logical read, a think-time sleep between reads, latency recorded
// per read.
type efleetStream struct {
	f       *fleet.Fleet
	policy  fleet.Policy
	offs    []int64
	readLen int64
	think   simclock.Duration

	cur      int
	rd       *fleet.Read
	started  simclock.Duration
	thinking bool

	lats           []float64 // per-read latency, ms
	faults, hedged int
	errs           int
}

// Step implements iosched.Program.
func (s *efleetStream) Step(h *iosched.Handle, prev iosched.Result) iosched.Op {
	for {
		if s.rd == nil {
			if s.cur >= len(s.offs) {
				return iosched.Exit(nil)
			}
			if s.think > 0 && s.cur > 0 && !s.thinking {
				s.thinking = true
				return iosched.Sleep(s.think)
			}
			s.thinking = false
			s.rd = s.f.StartRead(s.policy, s.offs[s.cur], s.readLen)
			s.started = h.Now()
			prev = iosched.Result{}
		}
		op, done := s.rd.Step(h, prev)
		if !done {
			return op
		}
		s.lats = append(s.lats, float64(h.Now()-s.started)/float64(simclock.Millisecond))
		s.faults += s.rd.Failed
		if s.rd.Hedged {
			s.hedged++
		}
		if s.rd.Err != nil {
			s.errs++
		}
		s.cur++
		s.rd = nil
	}
}

// efleetPoint boots one machine + fleet, replays the scenario's read
// schedule under the policy, and reduces the latencies. records is the
// scenario's precomputed per-stream record table, shared read-only by
// the scenario's three policy cells (the paired-measurement contract).
func efleetPoint(pcfg Config, scen efleetScenario, policy fleet.Policy, replicas int, records [][]int) (efleetCell, error) {
	mem := device.NewMem(device.DefaultMemConfig(0))
	k := vfs.NewKernel(vfs.Config{
		PageSize:   pcfg.PageSize,
		CachePages: pcfg.CachePages,
		MemDevice:  mem,
		JitterSeed: pcfg.Seed,
		JitterFrac: pcfg.JitterFrac,
	})
	k.AttachDevice(mem)
	fl, err := fleet.New(k, efleetFleetConfig(replicas))
	if err != nil {
		return efleetCell{}, err
	}
	tab, err := lmbench.Calibrate(k.Clock, mem, k.Devices.All())
	if err != nil {
		return efleetCell{}, err
	}
	if err := pcfg.applySLEDMemo(tab); err != nil {
		return efleetCell{}, err
	}
	fl.SetTable(tab)
	ps := int64(pcfg.PageSize)
	recLen := efleetRecordPages * ps
	if err := fl.CreateFile("/fleet", fileSeed(pcfg, "efleet-file", 0), efleetFilePages*ps); err != nil {
		return efleetCell{}, err
	}
	if n := scen.warmReplica0Records; n > 0 {
		r0 := fl.Replica(0)
		if err := r0.Server().ReadThrough(k.Clock, r0.Inode().Extent(), int64(n)*recLen); err != nil {
			return efleetCell{}, err
		}
	}
	k.ResetDeviceState()
	if fc := scen.injectReplica0; fc != nil {
		id := fl.Replica(0).Dev
		wrapped, _ := faults.Wrap(k.Devices.Get(id), *fc)
		k.Devices.Replace(id, wrapped)
	}

	e := iosched.NewEngine(k)
	for i := 0; i < fl.Replicas(); i++ {
		e.Queue(fl.Replica(i).Dev, iosched.NewFCFS())
	}
	tab.SetLoad(e)
	fl.ObserveLateFaults(e)
	streams := make([]*efleetStream, len(records))
	for i, recs := range records {
		offs := make([]int64, len(recs))
		for j, rec := range recs {
			offs[j] = int64(rec) * recLen
		}
		streams[i] = &efleetStream{f: fl, policy: policy, offs: offs, readLen: recLen, think: scen.think}
		e.AddStream(simclock.Duration(i)*scen.stagger, streams[i])
	}
	if err := e.Run(); err != nil {
		return efleetCell{}, err
	}

	var cell efleetCell
	sample := &stats.Sample{}
	var lats []float64
	for _, s := range streams {
		lats = append(lats, s.lats...)
		for _, l := range s.lats {
			sample.Add(l)
		}
		cell.faults += s.faults
		cell.hedged += s.hedged
		cell.errs += s.errs
	}
	for i := 0; i < fl.Replicas(); i++ {
		cell.probes += fl.Replica(i).Probes
	}
	cdf := stats.NewCDF(lats)
	cell.meanMs = sample.Mean()
	cell.p50Ms = cdf.Quantile(0.50)
	cell.p99Ms = cdf.Quantile(0.99)
	return cell, nil
}

// EFleet runs the fleet grid: every scenario under every policy, on
// identical read schedules and identically seeded machines per scenario.
// replicas overrides the fleet width (sledsbench's -fleet knob); <= 0
// selects the default of 4.
func EFleet(cfg Config, replicas int) (EFleetReport, error) {
	cfg.validate()
	if replicas <= 0 {
		replicas = efleetReplicas
	}
	streams := efleetStreams(cfg)
	nPol := len(efleetPolicies)
	// Per-scenario read schedules, drawn once and shared across the
	// scenario's policy cells: the cells are paired measurements.
	schedules := make([][][]int, len(efleetScenarios))
	for si, name := range efleetScenarios {
		pcfg := cfg.forPoint("efleet", si)
		scen := efleetScenarioSpec(name, pcfg)
		schedules[si] = scen.records(trace.NewRNG(fileSeed(cfg, "efleet-sched", si)), streams)
	}
	points, err := RunGrid(cfg, len(efleetScenarios)*nPol, func(i int) (efleetCell, error) {
		si, pi := i/nPol, i%nPol
		pcfg := cfg.forPoint("efleet", si)
		return efleetPoint(pcfg, efleetScenarioSpec(efleetScenarios[si], pcfg), efleetPolicies[pi], replicas, schedules[si])
	})
	if err != nil {
		return EFleetReport{}, err
	}
	rep := EFleetReport{Replicas: replicas, Streams: streams}
	for si, name := range efleetScenarios {
		for pi, pol := range efleetPolicies {
			rep.Rows = append(rep.Rows, EFleetRow{Scenario: name, Policy: pol.String(), Cell: points[si*nPol+pi]})
		}
	}
	return rep, nil
}

// Cell lookup for the test gates.
func (r EFleetReport) cell(scenario, policy string) (efleetCell, bool) {
	for _, row := range r.Rows {
		if row.Scenario == scenario && row.Policy == policy {
			return row.Cell, true
		}
	}
	return efleetCell{}, false
}

// Render draws the report as the deterministic text block sledsbench
// prints (and make fleet-smoke diffs across worker counts).
func (r EFleetReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== efleet: %d-replica fleet, %d scenarios x {rr, sled, hedge}, %d streams x %d reads\n",
		r.Replicas, len(efleetScenarios), r.Streams, efleetReadsPerStream)
	b.WriteString("   per-read virtual-time latency (ms); faults = faulted completions absorbed by failover\n")
	fmt.Fprintf(&b, "  %-10s %-6s %10s %10s %10s %7s %7s %7s %5s\n",
		"scenario", "policy", "mean", "p50", "p99", "faults", "hedged", "probes", "errs")
	for _, row := range r.Rows {
		c := row.Cell
		fmt.Fprintf(&b, "  %-10s %-6s %10.4g %10.4g %10.4g %7d %7d %7d %5d\n",
			row.Scenario, row.Policy, c.meanMs, c.p50Ms, c.p99Ms,
			c.faults, c.hedged, c.probes, c.errs)
	}
	b.WriteString("  hotspot: cache-affinity routing aggregates the fleet's server caches; degraded: demotion\n")
	b.WriteString("  routes around the timeout replica and hedging masks the probes; flashcrowd: the load term\n")
	b.WriteString("  spills a correlated burst off the one warm replica\n")
	return b.String()
}
