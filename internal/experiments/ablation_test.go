package experiments

import (
	"math"
	"testing"
)

func TestAblationMmap(t *testing.T) {
	f, err := AblationMmap(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	viaRead := f.Series[0].Points[0].Mean
	viaMmap := f.Series[0].Points[1].Mean
	if viaMmap >= viaRead {
		t.Fatalf("mapped scan (%v) not cheaper than read() (%v)", viaMmap, viaRead)
	}
	// The whole gap should be roughly the memory-copy time: size/48MB/s.
	if viaMmap > viaRead/2 {
		t.Fatalf("mapped scan (%v) saved too little over read() (%v)", viaMmap, viaRead)
	}
}

func TestAblationZones(t *testing.T) {
	f, err := AblationZones(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	single := math.Abs(f.Series[0].Points[0].Mean)
	zoned := math.Abs(f.Series[0].Points[1].Mean)
	if zoned >= single {
		t.Fatalf("zoned table error (%.1f%%) not below single-entry (%.1f%%)", zoned, single)
	}
	if zoned > 10 {
		t.Fatalf("zoned estimate still off by %.1f%%", zoned)
	}
	if single < 5 {
		t.Fatalf("single-entry error only %.1f%% — the inner-cylinder placement did not bite", single)
	}
}
