package experiments

import (
	"errors"
	"fmt"
	"io"

	"sleds/internal/apps/wcapp"
	"sleds/internal/cache"
	"sleds/internal/core"
	"sleds/internal/lmbench"
	"sleds/internal/simclock"
	"sleds/internal/sledlib"
)

// The ablation experiments vary the design choices DESIGN.md calls out
// and measure the effect on the headline SLEDs gain. Each uses the
// wc-on-warm-cache scenario at twice the cache size — the middle of the
// regime where SLEDs help.

// ablationSize returns the canonical ablation file size: 2x cache.
func ablationSize(cfg Config) int64 { return 2 * cfg.CacheBytes() }

// wcWarmSpeedup measures the wc speedup (without/with SLEDs) on a warm
// file of the given size under cfg. The two modes run as parallel points;
// unlike the figure sweeps they deliberately share cfg.Seed unchanged, so
// the paired comparison sees identical jitter streams.
func wcWarmSpeedup(cfg Config, size int64) (speedup float64, err error) {
	sec, err := RunGrid(cfg, 2, func(mode int) (float64, error) {
		m, err := BootMachine(cfg, ProfileUnix)
		if err != nil {
			return 0, err
		}
		if _, err := textFileOn(m, "ext2", uint64(cfg.Seed), size, cfg.PageSize); err != nil {
			return 0, err
		}
		env := m.Env(mode == 1, cfg.BufSize)
		elapsed, _, err := measured(cfg, m, func(int) error {
			_, err := wcapp.Run(env, "/data/testfile")
			return err
		})
		if err != nil {
			return 0, err
		}
		return elapsed.Mean(), nil
	})
	if err != nil {
		return 0, err
	}
	return sec[0] / sec[1], nil
}

// AblationPolicy measures the SLEDs gain under each replacement policy.
// The Figure 3 pathology is specific to LRU-like policies; CLOCK
// approximates it, FIFO shares it for pure linear scans.
func AblationPolicy(cfg Config) (Figure, error) {
	cfg.validate()
	size := ablationSize(cfg)
	policies := []cache.Policy{cache.LRU, cache.Clock, cache.FIFO}
	pts, err := RunGrid(cfg, len(policies), func(i int) (Point, error) {
		c := cfg
		c.Policy = policies[i]
		sp, err := wcWarmSpeedup(c, size)
		if err != nil {
			return Point{}, err
		}
		return Point{X: float64(policies[i]), Mean: sp}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	var names []string
	for _, pol := range policies {
		names = append(names, pol.String())
	}
	return Figure{
		ID:     "ablation-policy",
		Title:  fmt.Sprintf("wc warm-cache speedup at 2x cache size, by replacement policy (%v)", names),
		XLabel: "policy", YLabel: "speedup",
		Series: []Series{{Name: "without/with SLEDs", Points: pts}},
		Notes:  "x: 0=LRU 1=CLOCK 2=FIFO",
	}, nil
}

// pickOrderScan reads a whole warm file through a picker with the given
// order and reports elapsed seconds and faults.
func pickOrderScan(cfg Config, order sledlib.Order) (sec float64, faults int64, err error) {
	m, err := BootMachine(cfg, ProfileUnix)
	if err != nil {
		return 0, 0, err
	}
	size := ablationSize(cfg)
	if _, err := textFileOn(m, "ext2", uint64(cfg.Seed), size, cfg.PageSize); err != nil {
		return 0, 0, err
	}
	f, err := m.K.Open("/data/testfile")
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	if _, err := io.Copy(io.Discard, f); err != nil { // warm
		return 0, 0, err
	}

	picker, err := sledlib.PickInit(m.K, m.Table, f, sledlib.Options{BufSize: cfg.BufSize, Order: order})
	if err != nil {
		return 0, 0, err
	}
	defer picker.Finish()
	m.K.ResetDeviceState()
	m.K.ResetRunStats()
	start := m.K.Clock.Now()
	buf := make([]byte, cfg.BufSize)
	for {
		off, n, err := picker.NextRead()
		if errors.Is(err, sledlib.ErrFinished) {
			break
		}
		if err != nil {
			return 0, 0, err
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil && err != io.EOF {
			return 0, 0, err
		}
	}
	return float64(m.K.Clock.Now()-start) / float64(simclock.Second), m.K.RunStats().Faults, nil
}

// AblationPickOrder compares the paper's lowest-latency-first schedule
// against file order and the pessimal highest-latency-first order.
func AblationPickOrder(cfg Config) (Figure, error) {
	cfg.validate()
	orders := []sledlib.Order{sledlib.OrderLatency, sledlib.OrderLinear, sledlib.OrderReverseLatency}
	type scanPoint struct{ time, faults Point }
	points, err := RunGrid(cfg, len(orders), func(i int) (scanPoint, error) {
		sec, faults, err := pickOrderScan(cfg, orders[i])
		if err != nil {
			return scanPoint{}, err
		}
		return scanPoint{
			Point{X: float64(orders[i]), Mean: sec},
			Point{X: float64(orders[i]), Mean: float64(faults)},
		}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	var timePts, faultPts []Point
	for _, p := range points {
		timePts = append(timePts, p.time)
		faultPts = append(faultPts, p.faults)
	}
	return Figure{
		ID:     "ablation-pickorder",
		Title:  "warm full-file scan at 2x cache size, by pick order",
		XLabel: "order", YLabel: "seconds / faults",
		Series: []Series{
			{Name: "elapsed seconds", Points: timePts},
			{Name: "hard faults", Points: faultPts},
		},
		Notes: "x: 0=latency-first (paper) 1=file order 2=highest-latency-first",
	}, nil
}

// AblationRefresh measures the Refresh extension (§4.2's "refreshing the
// state of those SLEDs occasionally would allow the library to take
// advantage of any changes in state"). The scenario: a 3x-cache file whose
// tail third is cached; after the picker consumes the cheap tail, a
// cooperating process reads the MIDDLE third into cache. The stale
// schedule visits the head third first and its device reads evict the
// freshly cached middle before the scan arrives; a refreshed schedule
// reads the middle while it is still resident.
func AblationRefresh(cfg Config) (Figure, error) {
	cfg.validate()
	run := func(refresh bool) (float64, error) {
		m, err := BootMachine(cfg, ProfileUnix)
		if err != nil {
			return 0, err
		}
		third := cfg.CacheBytes()
		size := 3 * third
		if _, err := textFileOn(m, "ext2", uint64(cfg.Seed), size, cfg.PageSize); err != nil {
			return 0, err
		}
		f, err := m.K.Open("/data/testfile")
		if err != nil {
			return 0, err
		}
		defer f.Close()
		// Warm pass: the tail third survives in cache.
		io.Copy(io.Discard, f)

		picker, err := sledlib.PickInit(m.K, m.Table, f, sledlib.Options{BufSize: cfg.BufSize})
		if err != nil {
			return 0, err
		}
		defer picker.Finish()
		m.K.ResetDeviceState()
		m.K.ResetRunStats()
		start := m.K.Clock.Now()
		buf := make([]byte, cfg.BufSize)
		mid := make([]byte, third) // cooperating process's buffer, allocated outside the scan loop
		cheapChunks := int(third / cfg.BufSize)
		for i := 0; ; i++ {
			if i == cheapChunks {
				// A cooperating process pulls the middle third into the
				// cache; its own I/O time is excluded from the window.
				before := m.K.Clock.Now()
				g, _ := m.K.Open("/data/testfile")
				g.ReadAt(mid, third)
				g.Close()
				start += m.K.Clock.Now() - before
				if refresh {
					if err := picker.Refresh(); err != nil {
						return 0, err
					}
				}
			}
			off, n, err := picker.NextRead()
			if errors.Is(err, sledlib.ErrFinished) {
				break
			}
			if err != nil {
				return 0, err
			}
			if _, err := f.ReadAt(buf[:n], off); err != nil && err != io.EOF {
				return 0, err
			}
		}
		return float64(m.K.Clock.Now()-start) / float64(simclock.Second), nil
	}
	secs, err := RunGrid(cfg, 2, func(mode int) (float64, error) { return run(mode == 1) })
	if err != nil {
		return Figure{}, err
	}
	stale, fresh := secs[0], secs[1]
	return Figure{
		ID:     "ablation-refresh",
		Title:  "SLEDs scan with a mid-run cache change: stale vs refreshed schedule",
		XLabel: "mode", YLabel: "seconds",
		Series: []Series{{Name: "elapsed", Points: []Point{
			{X: 0, Mean: stale}, {X: 1, Mean: fresh},
		}}},
		Notes: "x: 0=stale schedule (paper implementation), 1=Refresh() extension",
	}, nil
}

// AblationMmap measures the paper's §5.2 remark that the SLEDs CPU
// penalty on small cached files comes partly from read()'s user-space
// copy, and that "an mmap-friendly SLEDs library is feasible, which
// should reduce the CPU penalty": a fully cached file is scanned in pick
// order through read() and through the mapped (no-copy) path.
func AblationMmap(cfg Config) (Figure, error) {
	cfg.validate()
	run := func(mapped bool) (float64, error) {
		m, err := BootMachine(cfg, ProfileUnix)
		if err != nil {
			return 0, err
		}
		size := cfg.CacheBytes() / 2 // comfortably cached
		if _, err := textFileOn(m, "ext2", uint64(cfg.Seed), size, cfg.PageSize); err != nil {
			return 0, err
		}
		f, err := m.K.Open("/data/testfile")
		if err != nil {
			return 0, err
		}
		defer f.Close()
		io.Copy(io.Discard, f) // fully cached

		picker, err := sledlib.PickInit(m.K, m.Table, f, sledlib.Options{BufSize: cfg.BufSize})
		if err != nil {
			return 0, err
		}
		defer picker.Finish()
		start := m.K.Clock.Now()
		buf := make([]byte, cfg.BufSize)
		for {
			off, n, err := picker.NextRead()
			if errors.Is(err, sledlib.ErrFinished) {
				break
			}
			if err != nil {
				return 0, err
			}
			if mapped {
				_, err = f.ReadAtMapped(buf[:n], off)
			} else {
				_, err = f.ReadAt(buf[:n], off)
			}
			if err != nil && err != io.EOF {
				return 0, err
			}
		}
		return float64(m.K.Clock.Now()-start) / float64(simclock.Second), nil
	}
	secs, err := RunGrid(cfg, 2, func(mode int) (float64, error) { return run(mode == 1) })
	if err != nil {
		return Figure{}, err
	}
	viaRead, viaMmap := secs[0], secs[1]
	return Figure{
		ID:     "ablation-mmap",
		Title:  "pick-order scan of a fully cached file: read() vs mmap path",
		XLabel: "mode", YLabel: "seconds",
		Series: []Series{{Name: "elapsed", Points: []Point{
			{X: 0, Mean: viaRead}, {X: 1, Mean: viaMmap},
		}}},
		Notes: "x: 0=read() with user copy, 1=mapped access — the copy is the CPU penalty of §5.2",
	}, nil
}

// AblationZones measures the single-entry-per-device limitation of §4.1
// against the zoned-table extension: a file placed on the disk's inner
// (slow) cylinders is estimated with both tables and compared to the
// measured cold read.
func AblationZones(cfg Config) (Figure, error) {
	cfg.validate()
	m, err := BootMachine(cfg, ProfileUnix)
	if err != nil {
		return Figure{}, err
	}
	disk := m.K.Devices.Get(m.Disk)
	// Push the test file deep into the device by reserving (not
	// touching) most of the space before it: reservation is free.
	filler := disk.Info().Size * 8 / 10
	if _, err := m.K.ReserveExtent(m.Disk, filler); err != nil {
		return Figure{}, err
	}
	size := cfg.Sizes[len(cfg.Sizes)/2]
	if _, err := textFileOn(m, "ext2", uint64(cfg.Seed), size, cfg.PageSize); err != nil {
		return Figure{}, err
	}
	n, err := m.K.Stat("/data/testfile")
	if err != nil {
		return Figure{}, err
	}

	singleEst, err := sledlib.TotalDeliveryTime(m.K, m.Table, n, core.PlanLinear)
	if err != nil {
		return Figure{}, err
	}
	zones, err := lmbench.MeasureDeviceZones(m.K.Clock, disk, 8)
	if err != nil {
		return Figure{}, err
	}
	if err := m.Table.SetDeviceZones(m.Disk, zones); err != nil {
		return Figure{}, err
	}
	zonedEst, err := sledlib.TotalDeliveryTime(m.K, m.Table, n, core.PlanLinear)
	if err != nil {
		return Figure{}, err
	}

	f, err := m.K.Open("/data/testfile")
	if err != nil {
		return Figure{}, err
	}
	defer f.Close()
	m.K.ResetDeviceState()
	// Stream in large requests, as the estimate's model assumes; the
	// buffer is per-run scratch, not part of the measured closure.
	const stream = int64(256 << 10)
	buf := make([]byte, stream)
	actual, err := elapsedSeconds(m, func() error {
		for off := int64(0); off < size; off += stream {
			nn := stream
			if off+nn > size {
				nn = size - off
			}
			if _, err := f.ReadAtMapped(buf[:nn], off); err != nil && err != io.EOF {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	errPct := func(est float64) float64 { return 100 * (est - actual) / actual }
	return Figure{
		ID:     "ablation-zones",
		Title:  "delivery estimate error for an inner-cylinder file: single-entry vs zoned table",
		XLabel: "table", YLabel: "percent error",
		Series: []Series{{Name: "(est-actual)/actual %", Points: []Point{
			{X: 0, Mean: errPct(singleEst)},
			{X: 1, Mean: errPct(zonedEst)},
		}}},
		Notes: "x: 0=single entry (paper §4.1), 1=zoned extension ([Van97] future work)",
	}, nil
}

// AblationReadahead measures kernel readahead's interaction with the two
// wc modes: it narrows the SLEDs gap by cutting per-request latencies for
// the linear reader.
func AblationReadahead(cfg Config) (Figure, error) {
	cfg.validate()
	settings := []int{0, 8}
	pts, err := RunGrid(cfg, len(settings), func(i int) (Point, error) {
		c := cfg
		c.ReadaheadPages = settings[i]
		sp, err := wcWarmSpeedup(c, ablationSize(cfg))
		if err != nil {
			return Point{}, err
		}
		return Point{X: float64(settings[i]), Mean: sp}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ablation-readahead",
		Title:  "wc warm-cache speedup at 2x cache size, by kernel readahead",
		XLabel: "readahead pages", YLabel: "speedup",
		Series: []Series{{Name: "without/with SLEDs", Points: pts}},
	}, nil
}
