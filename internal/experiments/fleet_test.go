package experiments

import (
	"strings"
	"testing"
)

// efleetReport runs the quick-scale grid once and shares it across the
// gate tests: the experiment is deterministic, so one run is the run.
var efleetOnce struct {
	rep EFleetReport
	err error
	ran bool
}

func efleetReport(t *testing.T) EFleetReport {
	t.Helper()
	if !efleetOnce.ran {
		efleetOnce.rep, efleetOnce.err = EFleet(QuickConfig(), 0)
		efleetOnce.ran = true
	}
	if efleetOnce.err != nil {
		t.Fatal(efleetOnce.err)
	}
	return efleetOnce.rep
}

func efleetCellOrFatal(t *testing.T, rep EFleetReport, scenario, policy string) efleetCell {
	t.Helper()
	c, ok := rep.cell(scenario, policy)
	if !ok {
		t.Fatalf("no (%s, %s) cell in the report", scenario, policy)
	}
	return c
}

// TestEFleetNoReadFailures: every read completes within its retry budget
// in every cell — failover absorbs the injected faults.
func TestEFleetNoReadFailures(t *testing.T) {
	rep := efleetReport(t)
	for _, row := range rep.Rows {
		if row.Cell.errs != 0 {
			t.Errorf("(%s, %s): %d reads exhausted their retry budget", row.Scenario, row.Policy, row.Cell.errs)
		}
	}
}

// TestEFleetDegradedGates pins the degraded-scenario ordering the fleet
// tier exists for: SLED routing beats blind rotation on p99 (demotion
// keeps traffic off the timeout replica), and hedging beats non-hedged
// SLED on p99 (the probe-back reads' timeouts are masked by the hedge)
// without inflating p50 by more than 10%.
func TestEFleetDegradedGates(t *testing.T) {
	rep := efleetReport(t)
	rr := efleetCellOrFatal(t, rep, "degraded", "rr")
	sled := efleetCellOrFatal(t, rep, "degraded", "sled")
	hedge := efleetCellOrFatal(t, rep, "degraded", "hedge")
	if sled.p99Ms >= rr.p99Ms {
		t.Errorf("degraded p99: sled %.4g ms not below rr %.4g ms", sled.p99Ms, rr.p99Ms)
	}
	if hedge.p99Ms >= sled.p99Ms {
		t.Errorf("degraded p99: hedge %.4g ms not below sled %.4g ms", hedge.p99Ms, sled.p99Ms)
	}
	if hedge.p50Ms > sled.p50Ms*1.10 {
		t.Errorf("degraded p50: hedge %.4g ms inflates sled %.4g ms beyond the 10%% bound", hedge.p50Ms, sled.p50Ms)
	}
	if sled.faults == 0 {
		t.Error("degraded sled absorbed no faults: the scenario exercised nothing")
	}
	if hedge.hedged == 0 {
		t.Error("degraded hedge never fired a hedge")
	}
}

// TestEFleetHotspotGates: cache-affinity routing aggregates the fleet's
// server caches, so SLED beats blind rotation on p99 and on the median.
func TestEFleetHotspotGates(t *testing.T) {
	rep := efleetReport(t)
	rr := efleetCellOrFatal(t, rep, "hotspot", "rr")
	sled := efleetCellOrFatal(t, rep, "hotspot", "sled")
	if sled.p99Ms >= rr.p99Ms {
		t.Errorf("hotspot p99: sled %.4g ms not below rr %.4g ms", sled.p99Ms, rr.p99Ms)
	}
	if sled.p50Ms >= rr.p50Ms {
		t.Errorf("hotspot p50: sled %.4g ms not below rr %.4g ms", sled.p50Ms, rr.p50Ms)
	}
}

// TestEFleetRenderShape: the rendered block lists every scenario x
// policy row (the fleet-smoke diff target).
func TestEFleetRenderShape(t *testing.T) {
	rep := efleetReport(t)
	out := rep.Render()
	if !strings.HasPrefix(out, "== efleet:") {
		t.Fatalf("render does not open with the efleet banner:\n%s", out)
	}
	for _, scen := range efleetScenarios {
		if got := strings.Count(out, scen); got < len(efleetPolicies) {
			t.Errorf("scenario %q appears %d times, want >= %d:\n%s", scen, got, len(efleetPolicies), out)
		}
	}
}

// TestEFleetDeterministicAcrossWorkers: the report is byte-identical at
// 1 and 4 workers (the in-process half of make fleet-smoke).
func TestEFleetDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips the second grid run")
	}
	cfg := QuickConfig()
	cfg.Workers = 1
	r1, err := EFleet(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	r4, err := EFleet(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r4.Render() {
		t.Fatalf("worker-count dependent output:\n-- workers=1 --\n%s\n-- workers=4 --\n%s", r1.Render(), r4.Render())
	}
}
