// Package experiments regenerates every table and figure in the paper's
// evaluation (§5) against the simulated storage stack, following the
// paper's methodology: warm caches, one discarded warm-up run, twelve
// measured runs per point, means with 90% confidence intervals.
//
// Each experiment builds a fresh machine per (file size, mode) point,
// carries cache state between consecutive runs of the same mode (the
// paper: "the second run of grep without SLEDs found the file system
// buffer cache in the state that the first run had left it"), and reports
// virtual-time elapsed seconds and hard page-fault counts.
package experiments

import (
	"fmt"
	"strconv"

	"sleds/internal/cache"
	"sleds/internal/core"
	"sleds/internal/faults"
)

// MB is 2^20 bytes.
const MB = int64(1 << 20)

// Config scales an experiment. PaperConfig reproduces the paper's setup;
// QuickConfig shrinks everything ~16x for tests and testing.B benches
// while preserving the cache-to-file-size ratios that give the figures
// their shape.
type Config struct {
	PageSize   int
	CachePages int     // page frames available for file data
	Sizes      []int64 // file sizes to sweep
	Runs       int     // measured runs per point (after 1 discarded warm-up)
	CDFRuns    int     // runs for the Figure 13 CDF
	BufSize    int64   // application read-chunk size
	Seed       int64
	JitterFrac float64 // background-activity perturbation of I/O times

	// Workers sizes the parallel experiment runner's pool (see runner.go);
	// <= 0 selects GOMAXPROCS. Any value produces byte-identical output.
	Workers int

	// FaultProfile, when set to a profile from internal/faults ("light",
	// "heavy"), wraps every non-memory device of every booted machine in a
	// deterministic fault injector after calibration. "" and "off" disable
	// injection. The efaults experiment ignores this and does its own
	// targeted injection; the knob exists for whole-suite robustness runs
	// (make faults-smoke).
	FaultProfile string

	// SLEDMemo controls the skeleton memo of the sleds table on every
	// machine the experiments boot: "" or "on" keeps the default capacity
	// (core.DefaultMemoFiles), "off" disables memoization, and a positive
	// decimal sets the per-table file capacity. The memoized query path is
	// bit-identical to the direct one, so every committed golden is
	// byte-identical at any setting; the knob exists so the determinism
	// target can prove that (sledsbench -sledmemo).
	SLEDMemo string

	// Ablation knobs (zero values reproduce the paper's setup).
	Policy         cache.Policy // page replacement (default LRU)
	ReadaheadPages int          // demand-fault readahead (default 0)
}

// ParseSLEDMemo maps a -sledmemo value to a core.Table memo capacity:
// "" and "on" select core.DefaultMemoFiles, "off" selects 0 (memo
// disabled), and a positive decimal selects itself. Anything else is an
// error naming the valid forms.
func ParseSLEDMemo(s string) (int, error) {
	switch s {
	case "", "on":
		return core.DefaultMemoFiles, nil
	case "off":
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("experiments: bad SLED memo setting %q (valid: on, off, or a positive file capacity)", s)
	}
	return n, nil
}

// applySLEDMemo configures a freshly calibrated table per c.SLEDMemo.
func (c Config) applySLEDMemo(tab *core.Table) error {
	n, err := ParseSLEDMemo(c.SLEDMemo)
	if err != nil {
		return err
	}
	tab.SetMemoCapacity(n)
	return nil
}

// PaperConfig is the full-scale configuration: 4 KiB pages, a 64 MB
// machine with ~44 MB of file cache, file sizes 8..128 MB in steps of 8,
// twelve measured runs (90% CIs), as in §5.1.
func PaperConfig() Config {
	var sizes []int64
	for mb := int64(8); mb <= 128; mb += 8 {
		sizes = append(sizes, mb*MB)
	}
	return Config{
		PageSize:   4096,
		CachePages: 44 * int(MB) / 4096,
		Sizes:      sizes,
		Runs:       12,
		CDFRuns:    36,
		BufSize:    64 << 10,
		Seed:       20000923, // OSDI 2000
		JitterFrac: 0.02,
	}
}

// LHEASizes returns the paper's LHEASOFT sweep (§5.3: "only for file
// sizes up to 64 MB") scaled to the given config: the first half of the
// size sweep.
func (c Config) LHEASizes() []int64 {
	n := len(c.Sizes) / 2
	if n == 0 {
		n = len(c.Sizes)
	}
	return c.Sizes[:n]
}

// QuickConfig is a ~16x-scaled configuration with the same shape: ~2.75 MB
// of cache, file sizes 0.5..8 MB, fewer runs. It exists so the test suite
// and testing.B benches can regenerate every figure in seconds.
func QuickConfig() Config {
	var sizes []int64
	for kb := int64(512); kb <= 8192; kb += 512 {
		sizes = append(sizes, kb<<10)
	}
	return Config{
		PageSize:   4096,
		CachePages: int(2816 << 10 / 4096), // 2.75 MB
		Sizes:      sizes,
		Runs:       5,
		CDFRuns:    12,
		BufSize:    16 << 10,
		Seed:       20000923,
		JitterFrac: 0.02,
	}
}

// validate panics on nonsensical configurations; experiments are driver
// code, so misconfiguration is a programming error.
func (c Config) validate() {
	if c.PageSize <= 0 || c.CachePages <= 0 || c.Runs <= 0 || len(c.Sizes) == 0 {
		panic(fmt.Sprintf("experiments: invalid config %+v", c))
	}
	if c.FaultProfile != "" {
		if _, ok := faults.ProfileConfig(c.FaultProfile, 0); !ok {
			panic(fmt.Sprintf("experiments: unknown fault profile %q", c.FaultProfile))
		}
	}
	if _, err := ParseSLEDMemo(c.SLEDMemo); err != nil {
		panic(err.Error())
	}
}

// CacheBytes returns the file-cache capacity in bytes.
func (c Config) CacheBytes() int64 { return int64(c.CachePages) * int64(c.PageSize) }
