package experiments

import (
	"fmt"

	"sleds/internal/apps/grepapp"
	"sleds/internal/core"
	"sleds/internal/iosched"
	"sleds/internal/simclock"
	"sleds/internal/workload"
)

// The contention experiments exercise internal/iosched: several simulated
// processes sharing one disk behind a request scheduler. They extend the
// paper's single-process evaluation to the multi-process case its §6
// anticipates — under contention the dominant latency term is queueing,
// and SLED answers must reflect it.

// contentionStreams is the stream-count sweep of the contention grid.
var contentionStreams = []int{1, 2, 4, 8}

// contentionSchedulers lists the policies the contention grid compares.
var contentionSchedulers = []string{"fcfs", "sstf", "deadline"}

// contentionPoint runs one (stream count, scheduler, mode) point: n
// simulated grep processes, one file each on the shared disk, every file
// with a cache-warm tail. Oblivious readers scan front to back, refaulting
// tails that the other streams' insertions evict before they arrive;
// SLED-guided readers consume the cached tails first. Returns the virtual
// seconds from the engine base to the last stream's finish. One run per
// point: the engine is deterministic, so there is no variance to sample.
func contentionPoint(pcfg, baseCfg Config, nIdx, n int, sched string, useSLEDs bool) (float64, error) {
	m, err := BootMachine(pcfg, ProfileUnix)
	if err != nil {
		return 0, err
	}
	ps := int64(pcfg.PageSize)
	// Per-stream file size scales inversely with the stream count so the
	// warmed tails (half of every file) total 3/4 of the cache at any n:
	// they survive the warm-up, but the head insertions during the run
	// (3/4 of the cache again) push them out long before an oblivious
	// front-to-back reader arrives at them.
	size := pcfg.CacheBytes() * 3 / 2 / int64(n) / ps * ps
	tail := size / 2 / ps * ps
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		paths[i] = fmt.Sprintf("/data/s%d", i)
		// File content derives from the base seed and the point's grid row
		// only — never the mode or the scheduler — so every policy/mode
		// cell of a row greps byte-identical files.
		c := workload.NewText(fileSeed(baseCfg, "econtend", nIdx*16+i), size, pcfg.PageSize)
		if _, err := m.K.Create(paths[i], m.Disk, c); err != nil {
			return 0, err
		}
	}
	buf := make([]byte, tail)
	for _, path := range paths {
		f, err := m.K.Open(path)
		if err != nil {
			return 0, err
		}
		if _, err := f.ReadAtMapped(buf, size-tail); err != nil {
			f.Close()
			return 0, err
		}
		f.Close()
	}
	// The warm-up positioned the disk head; start the measured contention
	// run from power-on mechanical state, as measured() does between runs.
	m.K.ResetDeviceState()
	m.K.ResetRunStats()

	e := iosched.NewEngine(m.K)
	e.Queue(m.Disk, iosched.NewScheduler(sched))
	m.Table.SetLoad(e)
	env := m.Env(useSLEDs, pcfg.BufSize)
	for _, path := range paths {
		path := path
		e.AddStreamFunc(0, func(h *iosched.Handle) error {
			// needleBase never occurs and nothing is planted: the grep
			// scans the whole file, matching nothing.
			_, err := grepapp.Run(env, path, needleBase, grepapp.Options{})
			return err
		})
	}
	if err := e.Run(); err != nil {
		return 0, err
	}
	var last simclock.Duration
	for i := 0; i < n; i++ {
		if f := e.FinishTime(iosched.StreamID(i)); f > last {
			last = f
		}
	}
	return float64(last-e.Base()) / float64(simclock.Second), nil
}

// EContention regenerates the contention sweep: total completion time of n
// concurrent greps sharing one disk, for every scheduling policy, with and
// without SLED-guided access ordering.
func EContention(cfg Config) (Figure, error) {
	cfg.validate()
	nScheds := len(contentionSchedulers)
	series := make([]Series, 2*nScheds)
	for si, sched := range contentionSchedulers {
		series[2*si] = Series{Name: sched + " with SLEDs"}
		series[2*si+1] = Series{Name: sched + " without SLEDs"}
	}
	// Grid point i is (stream-count nIdx, scheduler si, mode): the column
	// index varies fastest, one point per rendered cell.
	cols := 2 * nScheds
	points, err := RunGrid(cfg, len(contentionStreams)*cols, func(i int) (Point, error) {
		nIdx, col := i/cols, i%cols
		si, mode := col/2, 1-col%2 // with-SLEDs column first
		n := contentionStreams[nIdx]
		pcfg := cfg.forPoint("econtend", nIdx, si, mode)
		sec, err := contentionPoint(pcfg, cfg, nIdx, n, contentionSchedulers[si], mode == 1)
		if err != nil {
			return Point{}, err
		}
		return Point{X: float64(n), Mean: sec}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	for i, p := range points {
		col := i % cols
		series[col].Points = append(series[col].Points, p)
	}
	return Figure{
		ID:     "econtend",
		Title:  "concurrent greps sharing one disk: total completion time by scheduler",
		XLabel: "streams",
		YLabel: "seconds to last finish",
		Series: series,
		Notes:  "files have cache-warm tails; oblivious readers refault tails evicted under contention, SLED-guided readers consume them first",
	}, nil
}

// ELoadSLED regenerates the load-aware estimate sweep: what FSLEDS_GET
// reports for a fully uncached file while n other processes keep the
// disk's request queue full. The estimated latency must grow with the
// queue depth (core.Table folds Load state into the table entry); the
// unloaded table entry is flat for reference.
func ELoadSLED(cfg Config) (Figure, error) {
	cfg.validate()
	loads := []int{0, 1, 2, 4, 8}
	type loadPoint struct {
		estimated float64 // SLED latency reported under load, seconds
		unloaded  float64 // calibrated table latency, seconds
		depth     float64 // disk queue depth at the query instant
	}
	points, err := RunGrid(cfg, len(loads), func(i int) (loadPoint, error) {
		n := loads[i]
		pcfg := cfg.forPoint("eloadsled", i)
		m, err := BootMachine(pcfg, ProfileUnix)
		if err != nil {
			return loadPoint{}, err
		}
		ps := int64(pcfg.PageSize)
		// The probed file: fully uncached, so every page reports the disk
		// entry.
		target, err := m.K.Create("/data/target", m.Disk,
			workload.NewText(fileSeed(cfg, "eloadsled-target", i), 16*ps, pcfg.PageSize))
		if err != nil {
			return loadPoint{}, err
		}
		bgSize := pcfg.CacheBytes() / 2 / ps * ps
		var bgPaths []string
		for b := 0; b < n; b++ {
			path := fmt.Sprintf("/data/bg%d", b)
			c := workload.NewText(fileSeed(cfg, "eloadsled", i*16+b), bgSize, pcfg.PageSize)
			if _, err := m.K.Create(path, m.Disk, c); err != nil {
				return loadPoint{}, err
			}
			bgPaths = append(bgPaths, path)
		}
		e := iosched.NewEngine(m.K)
		e.Queue(m.Disk, iosched.NewFCFS())
		m.Table.SetLoad(e)
		env := m.Env(false, pcfg.BufSize)
		for _, path := range bgPaths {
			path := path
			e.AddStreamFunc(0, func(h *iosched.Handle) error {
				_, err := grepapp.Run(env, path, needleBase, grepapp.Options{})
				return err
			})
		}
		var pt loadPoint
		e.AddStreamFunc(0, func(h *iosched.Handle) error {
			// Let the background streams saturate the queue, then ask.
			h.Sleep(20 * simclock.Millisecond)
			sleds, err := core.Query(m.K, m.Table, target)
			if err != nil {
				return err
			}
			if len(sleds) != 1 {
				return fmt.Errorf("eloadsled: %d SLEDs for an uncached file, want 1", len(sleds))
			}
			pt.estimated = sleds[0].Latency
			pt.depth = float64(e.QueueDepth(m.Disk))
			return nil
		})
		if err := e.Run(); err != nil {
			return loadPoint{}, err
		}
		base, ok := m.Table.Device(m.Disk)
		if !ok {
			return loadPoint{}, fmt.Errorf("eloadsled: no table entry for the disk")
		}
		pt.unloaded = base.Latency
		return pt, nil
	})
	if err != nil {
		return Figure{}, err
	}
	est := Series{Name: "estimated latency"}
	unl := Series{Name: "unloaded entry"}
	dep := Series{Name: "queue depth"}
	for i, p := range points {
		x := float64(loads[i])
		est.Points = append(est.Points, Point{X: x, Mean: p.estimated})
		unl.Points = append(unl.Points, Point{X: x, Mean: p.unloaded})
		dep.Points = append(dep.Points, Point{X: x, Mean: p.depth})
	}
	return Figure{
		ID:     "eloadsled",
		Title:  "FSLEDS_GET latency estimate for an uncached file vs disk load",
		XLabel: "bg streams",
		YLabel: "seconds (depth: requests)",
		Series: []Series{est, unl, dep},
		Notes:  "latency' = latency*(1+depth) + in-flight remaining; the estimate tracks the queue the probe would join",
	}, nil
}
