package experiments

// The experiment grids are embarrassingly parallel: every (experiment,
// file-size, mode) point boots its own Machine with its own virtual clock
// and its own deterministically derived seed, so points share no state and
// can run on any number of workers without changing a single output byte.
//
// Invariant: cross-run cache-state carryover (the paper's "the second run
// found the buffer cache in the state that the first run had left it")
// stays strictly serial *within* a point — `measured` runs its warm-up and
// measured runs back to back on the point's machine. Only whole points
// parallelize. Anything that would share a Machine, a Kernel, or a Clock
// across goroutines is a bug: the simulator is single-threaded by design.
//
// Determinism follows from two rules enforced here:
//
//  1. Every point's seed is a pure function of the base seed and the
//     point's coordinates (PointSeed) — never of execution order or of
//     RNG state left behind by another point.
//  2. Results are reduced in point-index order (RunGrid writes result i
//     into slot i), so rendered tables and figures are byte-identical
//     between -workers 1 and -workers N.

import (
	"fmt"
	"runtime"
	"sync"
)

// Runner fans independent experiment points out to a fixed pool of
// workers. The zero value runs points serially on one worker.
type Runner struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS(0).
	Workers int
}

// runner builds the Runner an experiment configuration asks for.
func (c Config) runner() Runner { return Runner{Workers: c.Workers} }

// poolSize clamps the configured worker count to [1, n].
func (r Runner) poolSize(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes point(i) for every i in [0, n) on the worker pool and
// returns the error of the lowest-indexed failing point (so the reported
// failure does not depend on scheduling). A panicking point is captured
// and surfaced as that point's error rather than crashing or hanging the
// sweep. All points are attempted even after a failure; they are
// independent and cheap relative to debugging a half-run grid.
func (r Runner) Run(n int, point func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.poolSize(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = runPoint(i, point)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runPoint invokes point(i), converting a panic into an error so one bad
// point fails the sweep instead of killing the process mid-grid.
func runPoint(i int, point func(int) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiments: point %d panicked: %v", i, p)
		}
	}()
	return point(i)
}

// RunGrid runs point over [0, n) on cfg's worker pool and collects the
// results in index order, which is what keeps parallel output identical
// to serial output: workers may finish in any order, but slot i always
// holds point i.
func RunGrid[T any](cfg Config, n int, point func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := cfg.runner().Run(n, func(i int) error {
		v, err := point(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// mix64 is the SplitMix64 finalizer: a cheap bijective avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PointSeed derives the RNG seed for one grid point from the base
// configuration seed, the experiment id, and the point's coordinates
// (typically size index and mode). It is a pure function — same inputs,
// same seed, on every run, at every worker count — and mixes every input
// through SplitMix64 so nearby points get unrelated seeds instead of the
// correlated streams that base+offset arithmetic produces.
//
// This is the declared root of the repository's seed-derivation chains:
// seedflow accepts any seed that traces here.
//
//sledlint:seed
func PointSeed(base int64, exp string, idxs ...int) int64 {
	h := mix64(uint64(base) ^ 0x9e3779b97f4a7c15)
	for i := 0; i < len(exp); i++ {
		h = mix64(h ^ uint64(exp[i]))
	}
	h = mix64(h ^ uint64(len(exp)))
	for _, v := range idxs {
		h = mix64(h ^ uint64(uint32(v)))
	}
	h = mix64(h ^ uint64(len(idxs)))
	return int64(h)
}

// forPoint returns cfg with Seed replaced by the point's derived seed;
// the machine booted from the result gets point-local jitter.
func (c Config) forPoint(exp string, idxs ...int) Config {
	c.Seed = PointSeed(c.Seed, exp, idxs...)
	return c
}

// fileSeed is the workload-content seed for a sweep point. It mixes the
// experiment id and size index but deliberately NOT the mode, so the
// with-SLEDs and without-SLEDs halves of a pair read the byte-identical
// test file, as the paper's paired measurements do.
func fileSeed(cfg Config, exp string, sizeIdx int) uint64 {
	return uint64(PointSeed(cfg.Seed, exp, sizeIdx))
}
