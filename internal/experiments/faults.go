package experiments

import (
	"errors"
	"fmt"
	"strings"

	"sleds/internal/apps/grepapp"
	"sleds/internal/core"
	"sleds/internal/faults"
	"sleds/internal/simclock"
	"sleds/internal/sledlib"
	"sleds/internal/vfs"
	"sleds/internal/workload"
)

// The efaults experiment measures degraded-mode SLEDs: a machine holds the
// same needle in two places — a small file on NFS and a file
// efaultsDiskFactor times larger on the local disk — and a grep -q wants
// either copy. Healthy, the NFS copy is the cheaper read (its transfer is
// a fraction of the big disk scan) and every mode reads it. Then the NFS
// server degrades: a deterministic injector fails a quarter of its
// requests with full RPC timeouts. A blind reader still goes to NFS first
// and absorbs the retry tail; a SLED-guided reader sees the fault-inflated
// NFS estimates (the kernel's retry loop feeds every observed fault into
// the table's health state) and routes to the healthy disk copy instead.

const (
	// efaultsDiskFactor sizes the disk copy relative to the NFS copy. It
	// must exceed bwDisk/bwNFS * (1 + latNFS/size) so the healthy NFS
	// estimate wins at every sweep size — 16x does, for both the paper
	// and quick scales, with Table 2's ~9 MB/s disk and 1 MB/s NFS.
	efaultsDiskFactor = 16
	// efaultsPFault / efaultsMaxConsecutive parameterise the degraded NFS
	// injector: a quarter of fresh requests start a fault episode of at
	// most 3 failed attempts — strictly under the default RetryPolicy's 5
	// attempts, so the experiment completes without EIO by construction.
	efaultsPFault         = 0.25
	efaultsMaxConsecutive = 3
	// efaultsHalfLife stretches the health-penalty decay for this
	// experiment: it models a server that stays degraded for the whole
	// sweep, so the penalty the burn-in built must survive the measured
	// runs (which, routed to the disk, never touch NFS and would
	// otherwise let the default 60 s half-life erase it). Decay itself is
	// exercised by internal/core's tests.
	efaultsHalfLife = 1800 * simclock.Second
	// efaultsNeedleFrac places the needle (numerator/denominator percent
	// of the file) far enough in that the retry tail dominates a blind
	// degraded read.
	efaultsNeedleFrac = 55
)

// efaultsSizes returns the NFS-copy size sweep: the first four sizes of
// the configured sweep (the disk copy is efaultsDiskFactor larger).
func efaultsSizes(cfg Config) []int64 {
	n := 4
	if len(cfg.Sizes) < n {
		n = len(cfg.Sizes)
	}
	return cfg.Sizes[:n]
}

// FaultsCounters is the per-run fault accounting of one degraded cell.
type FaultsCounters struct {
	SizeMB       float64
	Mode         string // "blind" or "sleds"
	DeviceFaults int64
	Retries      int64
	RetryWaitSec float64
	EIOs         int64
}

// FaultsReport is the efaults experiment's product: the four-way sweep
// figure, fault accounting for the degraded cells, and a serial demo of
// the degradation-aware SLED surface (gmc-style panels plus pruning).
type FaultsReport struct {
	Figure   Figure
	Counters []FaultsCounters

	// HealthyPanel / DegradedPanel are the SLED vectors of the same NFS
	// file before and after the server degrades, one SLED per line.
	HealthyPanel  []string
	DegradedPanel []string
	// Kept / Pruned is sledlib.PruneDegraded's split of the demo file set.
	Kept, Pruned []string
}

// efaultsCell is one grid point's measurement.
type efaultsCell struct {
	seconds  float64
	ci90     float64
	counters FaultsCounters
}

// efaultsPoint runs one (size, health, mode) cell. Both file contents and
// the injector's fault schedule derive from the base seed and the size
// index only, so all four cells of a row search byte-identical files and
// both degraded cells face the identical fault pattern.
func efaultsPoint(pcfg, baseCfg Config, sizeIdx int, degraded, useSLEDs bool) (efaultsCell, error) {
	m, err := BootMachine(pcfg, ProfileUnix)
	if err != nil {
		return efaultsCell{}, err
	}
	size := efaultsSizes(baseCfg)[sizeIdx]
	diskSize := efaultsDiskFactor * size

	nfsC := workload.NewText(fileSeed(baseCfg, "efaults-nfs", sizeIdx), size, pcfg.PageSize)
	if _, err := m.K.Create("/data/remote.log", m.NFS, nfsC); err != nil {
		return efaultsCell{}, err
	}
	workload.PlantMatch(nfsC, size*efaultsNeedleFrac/100, needleBase)
	diskC := workload.NewText(fileSeed(baseCfg, "efaults-disk", sizeIdx), diskSize, pcfg.PageSize)
	if _, err := m.K.Create("/data/local.log", m.Disk, diskC); err != nil {
		return efaultsCell{}, err
	}
	workload.PlantMatch(diskC, diskSize*efaultsNeedleFrac/100, needleBase)

	m.Table.SetHealthHalfLife(efaultsHalfLife)
	if degraded {
		m.InjectFaults(m.NFS, faults.Config{
			Seed:           PointSeed(baseCfg.Seed, "efaults-inj", sizeIdx),
			PFault:         efaultsPFault,
			MaxConsecutive: efaultsMaxConsecutive,
		})
		// Burn-in: one full pass over the NFS copy observes the server's
		// fault pattern — every retried timeout feeds Table.ObserveFault
		// through the kernel's fault observer — and builds the health
		// penalty the SLED-guided runs then route on. Blind runs get the
		// same burn-in, so the modes differ only in what they do with the
		// knowledge.
		if err := burnIn(m, "/data/remote.log", size, pcfg.BufSize); err != nil {
			return efaultsCell{}, err
		}
	}

	paths := []string{"/data/remote.log", "/data/local.log"}
	env := m.Env(useSLEDs, pcfg.BufSize)
	var cell efaultsCell
	elapsed, _, err := measured(pcfg, m, func(int) error {
		// Every run starts cache-cold: the measurement is the routing
		// decision and its I/O consequence, not cache carryover (which
		// would let run 2+ of every mode read the needle from RAM).
		m.K.DropCaches()
		order := paths
		if useSLEDs {
			order, _ = sledlib.FileSetOrder(m.K, m.Table, paths, core.PlanLinear)
		}
		found := false
		for _, p := range order {
			got, err := grepapp.Run(env, p, needleBase, grepapp.Options{FirstOnly: true})
			if errors.Is(err, vfs.ErrIO) {
				// The retry policy gave up on this file (possible when a
				// global -faults profile stacks a second injector over the
				// experiment's own): do what grep does — report nothing
				// for it and move to the next file. The EIO is already in
				// RunStats.
				continue
			}
			if err != nil {
				return err
			}
			if len(got) > 0 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("efaults: needle %q not found in %v", needleBase, order)
		}
		rs := m.K.RunStats()
		cell.counters = FaultsCounters{
			SizeMB:       mbOf(size),
			DeviceFaults: rs.DeviceFaults,
			Retries:      rs.Retries,
			RetryWaitSec: rs.RetryWait.Seconds(),
			EIOs:         rs.EIOs,
		}
		return nil
	})
	if err != nil {
		return efaultsCell{}, err
	}
	sum := elapsed.Summarize()
	cell.seconds, cell.ci90 = sum.Mean, sum.CI90
	return cell, nil
}

// burnIn reads the whole file in bufSize chunks, the request granularity
// of an ordinary consumer. Chunked reads matter: each chunk is its own
// device request and its own fault opportunity, so the burn-in samples
// the injector's fault rate instead of issuing one giant request.
func burnIn(m *Machine, path string, size, bufSize int64) error {
	f, err := m.K.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, bufSize)
	for off := int64(0); off < size; off += bufSize {
		n := bufSize
		if off+n > size {
			n = size - off
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			if errors.Is(err, vfs.ErrIO) {
				continue // unreadable chunk; the fault is observed either way
			}
			return fmt.Errorf("efaults: burn-in at %d: %w", off, err)
		}
	}
	return nil
}

// efaultsDemo builds the serial demo: the same NFS file's SLED vector
// before and after the server degrades, and PruneDegraded's verdict on
// the two-file set. Run after the grid (it is one small machine).
func efaultsDemo(cfg Config) (healthy, degraded []string, kept, pruned []string, err error) {
	m, err := BootMachine(cfg.forPoint("efaults-demo"), ProfileUnix)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	size := efaultsSizes(cfg)[0]
	if _, err := m.K.Create("/data/remote.log", m.NFS,
		workload.NewText(fileSeed(cfg, "efaults-demo-nfs", 0), size, cfg.PageSize)); err != nil {
		return nil, nil, nil, nil, err
	}
	if _, err := m.K.Create("/data/local.log", m.Disk,
		workload.NewText(fileSeed(cfg, "efaults-demo-disk", 0), size, cfg.PageSize)); err != nil {
		return nil, nil, nil, nil, err
	}
	m.Table.SetHealthHalfLife(efaultsHalfLife)

	panel := func(path string) ([]string, error) {
		n, err := m.K.Stat(path)
		if err != nil {
			return nil, err
		}
		sleds, err := core.Query(m.K, m.Table, n)
		if err != nil {
			return nil, err
		}
		out := make([]string, len(sleds))
		for i, s := range sleds {
			out[i] = s.String()
		}
		return out, nil
	}
	if healthy, err = panel("/data/remote.log"); err != nil {
		return nil, nil, nil, nil, err
	}

	m.InjectFaults(m.NFS, faults.Config{
		Seed:           PointSeed(cfg.Seed, "efaults-demo-inj", 0),
		PFault:         efaultsPFault,
		MaxConsecutive: efaultsMaxConsecutive,
	})
	if err := burnIn(m, "/data/remote.log", size, cfg.BufSize); err != nil {
		return nil, nil, nil, nil, err
	}
	m.K.DropCaches()

	if degraded, err = panel("/data/remote.log"); err != nil {
		return nil, nil, nil, nil, err
	}
	kept, pruned = sledlib.PruneDegraded(m.K, m.Table,
		[]string{"/data/remote.log", "/data/local.log"}, 0.5)
	return healthy, degraded, kept, pruned, nil
}

// EFaults regenerates the degraded-mode sweep: grep -q time for blind and
// SLED-guided file-set orders, on a healthy machine and on one whose NFS
// server times out a quarter of its requests.
func EFaults(cfg Config) (FaultsReport, error) {
	cfg.validate()
	sizes := efaultsSizes(cfg)
	// Grid columns per size: (healthy, degraded) x (blind, sleds).
	const cols = 4
	names := []string{"healthy blind", "healthy with SLEDs", "degraded blind", "degraded with SLEDs"}
	points, err := RunGrid(cfg, len(sizes)*cols, func(i int) (efaultsCell, error) {
		sizeIdx, col := i/cols, i%cols
		degraded, useSLEDs := col >= 2, col%2 == 1
		pcfg := cfg.forPoint("efaults", sizeIdx, col)
		return efaultsPoint(pcfg, cfg, sizeIdx, degraded, useSLEDs)
	})
	if err != nil {
		return FaultsReport{}, err
	}

	series := make([]Series, cols)
	for c := range series {
		series[c] = Series{Name: names[c]}
	}
	var counters []FaultsCounters
	for i, cell := range points {
		sizeIdx, col := i/cols, i%cols
		series[col].Points = append(series[col].Points,
			Point{X: mbOf(sizes[sizeIdx]), Mean: cell.seconds, CI90: cell.ci90})
		if col >= 2 {
			c := cell.counters
			c.Mode = "blind"
			if col == 3 {
				c.Mode = "sleds"
			}
			counters = append(counters, c)
		}
	}

	healthy, degraded, kept, pruned, err := efaultsDemo(cfg)
	if err != nil {
		return FaultsReport{}, err
	}
	return FaultsReport{
		Figure: Figure{
			ID:     "efaults",
			Title:  "grep -q with the needle on NFS and (16x larger) on disk, healthy vs degraded NFS",
			XLabel: "NFS MB",
			YLabel: "seconds",
			Series: series,
			Notes: "degraded NFS times out 25% of requests; blind readers go to NFS first and absorb the " +
				"retry tail, SLED-guided readers see the fault-inflated estimates and route to the disk copy",
		},
		Counters:      counters,
		HealthyPanel:  healthy,
		DegradedPanel: degraded,
		Kept:          kept,
		Pruned:        pruned,
	}, nil
}

// Render draws the report as the deterministic text block sledsbench
// prints (and the determinism CI diffs across worker counts).
func (r FaultsReport) Render() string {
	var b strings.Builder
	b.WriteString(r.Figure.Render())
	b.WriteString("fault accounting, degraded cells (last measured run):\n")
	fmt.Fprintf(&b, "  %8s %6s %8s %8s %12s %6s\n", "NFS MB", "mode", "faults", "retries", "retry wait s", "EIOs")
	for _, c := range r.Counters {
		fmt.Fprintf(&b, "  %8.4g %6s %8d %8d %12.4g %6d\n",
			c.SizeMB, c.Mode, c.DeviceFaults, c.Retries, c.RetryWaitSec, c.EIOs)
	}
	b.WriteString("NFS file SLEDs before degradation:\n")
	for _, s := range r.HealthyPanel {
		b.WriteString("  " + s + "\n")
	}
	b.WriteString("NFS file SLEDs after degradation (latency includes health penalty):\n")
	for _, s := range r.DegradedPanel {
		b.WriteString("  " + s + "\n")
	}
	fmt.Fprintf(&b, "PruneDegraded(min confidence 0.5): keep %v, degraded %v\n", r.Kept, r.Pruned)
	return b.String()
}
