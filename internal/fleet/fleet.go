// Package fleet scales the remote tier out: N replicated file servers —
// each a remote.Server with its own disk, memory, and buffer cache —
// behind one client-side selector that picks a replica per read using the
// same SLED estimates the paper's FSLEDS_GET reports for local devices.
//
// Each replica registers one characterization device with the client
// kernel ("fleet/r0", "fleet/r1", ...), calibrated by lmbench like any
// other level. Per read the client queries every candidate replica
// (core.QueryAppend against the replica's copy of the file), folds in
// what the replica's server cache holds right now, and routes to the
// cheapest estimate. Load (queue depth under an iosched engine) and
// health (decaying fault penalties from core.Table.ObserveFault) steer
// the choice exactly as they steer local SLED queries; when every
// replica's confidence has collapsed below the floor the selector falls
// back to a confidence-weighted choice instead of trusting any single
// estimate.
//
// On top of selection the package layers the paper's latency-management
// toolkit for a fleet:
//
//   - Hedged reads: a virtual-time hedge deadline derived from the SLED
//     estimate arms a second-best replica; the first completion wins and
//     the loser is cancelled (iosched.HedgedDevRead).
//   - Failover: per-replica retry budgets with capped, doubling
//     virtual-time backoff; a faulted attempt feeds ObserveFault so the
//     next selection already routes around the replica.
//   - Graceful degradation: replicas whose confidence falls below the
//     floor are demoted out of the candidate set and probed back with a
//     bounded fraction of traffic, so a recovered server earns its
//     traffic back within a bounded number of probes.
//
// Everything runs in virtual time off deterministic state: selections,
// hedges, and backoffs are byte-identical across runs and worker counts.
package fleet

import (
	"fmt"

	"sleds/internal/core"
	"sleds/internal/device"
	"sleds/internal/remote"
	"sleds/internal/simclock"
	"sleds/internal/vfs"
	"sleds/internal/workload"
)

// RetryConfig bounds failover for one logical read: each replica may be
// tried at most MaxAttempts times, with a doubling backoff between
// attempts capped at BackoffCap.
type RetryConfig struct {
	MaxAttempts int
	Backoff     simclock.Duration
	BackoffCap  simclock.Duration
}

// Config parameterises a fleet.
type Config struct {
	// Replicas is the number of servers (>= 1).
	Replicas int
	// Server configures every replica's server (disk, memory, cache,
	// RTT, wire). ServerDisk.ID and Name are overwritten per replica.
	Server remote.Config
	// ConfidenceFloor demotes a replica from the candidate set when the
	// confidence of its estimate falls below it.
	ConfidenceFloor float64
	// ProbeEvery routes every ProbeEvery-th selection to a demoted
	// replica (round-robin among them), so a recovered server is
	// rediscovered within a bounded number of selections.
	ProbeEvery int
	// HedgeMult scales the primary's estimated latency into the hedge
	// deadline; MinHedgeDelay floors it.
	HedgeMult     float64
	MinHedgeDelay simclock.Duration
	// Retry bounds failover per logical read.
	Retry RetryConfig
}

// DefaultConfig returns a four-replica fleet of DefaultConfig servers
// with hedging at 3x the estimate and a two-attempt retry budget.
func DefaultConfig() Config {
	return Config{
		Replicas:        4,
		Server:          remote.DefaultConfig(),
		ConfidenceFloor: 0.5,
		ProbeEvery:      16,
		HedgeMult:       3,
		MinHedgeDelay:   2 * simclock.Millisecond,
		Retry: RetryConfig{
			MaxAttempts: 2,
			Backoff:     5 * simclock.Millisecond,
			BackoffCap:  80 * simclock.Millisecond,
		},
	}
}

// Replica is one server of the fleet and its client-side bookkeeping.
type Replica struct {
	Dev device.ID // the replica's registered characterization device

	srv   *remote.Server
	inode *vfs.Inode // this replica's copy of the replicated file

	// Cumulative counters, maintained by the selector and Read driver.
	Issued int64 // reads issued with this replica as primary
	Faults int64 // completions that surfaced a fault from this replica
	Probes int64 // selections that were probes of this (demoted) replica
}

// Server exposes the replica's server for inspection and fault injection
// (remote.Server.ReplaceDisk stacks an injector under the replica).
func (r *Replica) Server() *remote.Server { return r.srv }

// Inode returns the replica's copy of the replicated file (nil before
// CreateFile).
func (r *Replica) Inode() *vfs.Inode { return r.inode }

// Fleet is the client-side view of the replicated remote tier.
type Fleet struct {
	k   *vfs.Kernel
	cfg Config
	tab *core.Table

	replicas []*Replica
	pageSize int64

	picks   int64 // total selections, drives the probe cadence
	probeRR int   // round-robin cursor over demoted replicas
	rr      int   // round-robin cursor for PolicyRR

	scratch []core.SLED // QueryAppend scratch, reused across estimates
	ests    []estimate  // per-replica scratch for Select
}

// New attaches cfg.Replicas replica devices to the client kernel and
// returns the fleet. Call SetTable after calibration, then CreateFile.
func New(k *vfs.Kernel, cfg Config) (*Fleet, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("fleet: %d replicas", cfg.Replicas)
	}
	if cfg.ConfidenceFloor < 0 || cfg.ConfidenceFloor > 1 {
		return nil, fmt.Errorf("fleet: confidence floor %v outside [0,1]", cfg.ConfidenceFloor)
	}
	if cfg.HedgeMult <= 0 {
		return nil, fmt.Errorf("fleet: non-positive hedge multiplier %v", cfg.HedgeMult)
	}
	if cfg.Retry.MaxAttempts < 1 {
		return nil, fmt.Errorf("fleet: retry budget of %d attempts", cfg.Retry.MaxAttempts)
	}
	f := &Fleet{
		k:        k,
		cfg:      cfg,
		pageSize: int64(k.PageSize()),
		replicas: make([]*Replica, cfg.Replicas),
		ests:     make([]estimate, cfg.Replicas),
	}
	for i := range f.replicas {
		srvCfg := cfg.Server
		srvCfg.ServerDisk.ID = device.ID(k.Devices.Len())
		srvCfg.ServerDisk.Name = fmt.Sprintf("fleet/r%d", i)
		srv, err := remote.NewServer(srvCfg, f.pageSize)
		if err != nil {
			return nil, err
		}
		rd := &replicaDev{srv: srv, id: srvCfg.ServerDisk.ID, name: srvCfg.ServerDisk.Name, size: srvCfg.ServerDisk.Size}
		id := k.AttachDevice(rd)
		f.replicas[i] = &Replica{Dev: id, srv: srv}
	}
	return f, nil
}

// Replicas reports the fleet size.
func (f *Fleet) Replicas() int { return len(f.replicas) }

// Replica returns replica i.
func (f *Fleet) Replica(i int) *Replica { return f.replicas[i] }

// SetTable attaches the calibrated sleds table the selector estimates
// from (and feeds fault observations into).
func (f *Fleet) SetTable(tab *core.Table) { f.tab = tab }

// Table returns the attached sleds table (nil before SetTable).
func (f *Fleet) Table() *core.Table { return f.tab }

// CreateFile creates one copy of the replicated file per replica —
// path.r0, path.r1, ... on the respective replica devices, identical
// content from the seed — and remembers the inodes for estimates and
// reads. Size must be a multiple of the page size.
func (f *Fleet) CreateFile(path string, seed uint64, size int64) error {
	for i, r := range f.replicas {
		n, err := f.k.Create(fmt.Sprintf("%s.r%d", path, i), r.Dev, workload.NewText(seed, size, int(f.pageSize)))
		if err != nil {
			return err
		}
		r.inode = n
	}
	return nil
}

// replicaDev is the registered characterization device of one replica.
// The infallible Read is the calibration cost model (RTT + server disk +
// wire, never warming the server cache — the lmbench contract); the
// fallible ReadErr is the data path (the server's cache-aware
// read-through). Client reads issued through an iosched queue dispatch
// via ReadErr, so they feel the server cache; calibration via Read does
// not. Writes go synchronously to the server disk either way.
type replicaDev struct {
	srv  *remote.Server
	id   device.ID
	name string
	size int64
}

func (d *replicaDev) Info() device.Info {
	return device.Info{ID: d.id, Name: d.name, Level: device.LevelNFS, Size: d.size}
}

// Read charges the calibration cost model without touching the cache.
func (d *replicaDev) Read(c *simclock.Clock, off, n int64) {
	//sledlint:allow errflow -- infallible device.Device path: it charges time but has no error channel; faults surface through ReadErr
	_ = d.srv.ReadFresh(c, off, n)
}

// ReadErr is the data path: the server's cache-aware read-through, with
// the package remote abort-cost contract on a server-disk fault.
func (d *replicaDev) ReadErr(c *simclock.Clock, off, n int64) error {
	return d.srv.ReadThrough(c, off, n)
}

// Write charges a synchronous remote write through the infallible path.
func (d *replicaDev) Write(c *simclock.Clock, off, n int64) {
	//sledlint:allow errflow -- infallible device.Device path: it charges time but has no error channel; faults surface through WriteErr
	_ = d.srv.WriteThrough(c, off, n)
}

// WriteErr implements device.FallibleDevice for writes.
func (d *replicaDev) WriteErr(c *simclock.Clock, off, n int64) error {
	return d.srv.WriteThrough(c, off, n)
}

// Reset discards the server disk's mechanical state (between-trials
// contract; the server cache, like the client cache, survives Reset).
func (d *replicaDev) Reset() { d.srv.ResetDisk() }
