package fleet

import (
	"reflect"
	"testing"

	"sleds/internal/core"
	"sleds/internal/device"
	"sleds/internal/faults"
	"sleds/internal/iosched"
	"sleds/internal/lmbench"
	"sleds/internal/simclock"
	"sleds/internal/vfs"
	"sleds/internal/workload"
)

const testPage = 4096

type fixture struct {
	k   *vfs.Kernel
	f   *Fleet
	tab *core.Table
}

// newFleet boots a client kernel, attaches a fleet, calibrates, creates
// the replicated file, and resets device state — the standard boot.
func newFleet(t testing.TB, cfg Config, fileSize int64) *fixture {
	t.Helper()
	mem := device.NewMem(device.DefaultMemConfig(0))
	k := vfs.NewKernel(vfs.Config{PageSize: testPage, CachePages: 64, MemDevice: mem})
	k.AttachDevice(mem)
	f, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := lmbench.Calibrate(k.Clock, mem, k.Devices.All())
	if err != nil {
		t.Fatal(err)
	}
	f.SetTable(tab)
	if err := f.CreateFile("/data", 1, fileSize); err != nil {
		t.Fatal(err)
	}
	k.ResetDeviceState()
	return &fixture{k: k, f: f, tab: tab}
}

// injectReplica stacks a fault injector over replica i's registered
// device (under any queue interposed later), returning the raw device so
// tests can unwrap it again.
func injectReplica(fx *fixture, i int, cfg faults.Config) device.Device {
	id := fx.f.Replica(i).Dev
	raw := fx.k.Devices.Get(id)
	wrapped, _ := faults.Wrap(raw, cfg)
	fx.k.Devices.Replace(id, wrapped)
	return raw
}

func TestConfigValidation(t *testing.T) {
	mem := device.NewMem(device.DefaultMemConfig(0))
	k := vfs.NewKernel(vfs.Config{PageSize: testPage, CachePages: 8, MemDevice: mem})
	k.AttachDevice(mem)
	for _, mut := range []func(*Config){
		func(c *Config) { c.Replicas = 0 },
		func(c *Config) { c.ConfidenceFloor = 1.5 },
		func(c *Config) { c.HedgeMult = 0 },
		func(c *Config) { c.Retry.MaxAttempts = 0 },
	} {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(k, cfg); err == nil {
			t.Fatalf("bad config accepted: %+v", cfg)
		}
	}
}

func TestSelectTieBreaksByIndex(t *testing.T) {
	fx := newFleet(t, DefaultConfig(), 64*testPage)
	sel, err := fx.f.Select(0, 4*testPage, fx.k.Clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Primary != 0 || sel.Secondary != 1 {
		t.Fatalf("fresh fleet selection %+v, want replicas 0/1 by index tie-break", sel)
	}
	if sel.Degraded || sel.Probe {
		t.Fatalf("fresh fleet selection flagged %+v", sel)
	}
}

// TestSelectPrefersWarmServerCache: a replica whose server cache holds
// the region estimates below the disk-bound replicas and wins.
func TestSelectPrefersWarmServerCache(t *testing.T) {
	fx := newFleet(t, DefaultConfig(), 64*testPage)
	r2 := fx.f.Replica(2)
	off, n := int64(8*testPage), int64(4*testPage)
	if err := r2.Server().ReadThrough(fx.k.Clock, r2.Inode().Extent()+off, n); err != nil {
		t.Fatal(err)
	}
	sel, err := fx.f.Select(off, n, fx.k.Clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Primary != 2 {
		t.Fatalf("selection %+v ignored replica 2's warm cache", sel)
	}
	cold, err := fx.f.Select(32*testPage, n, fx.k.Clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Est >= cold.Est {
		t.Fatalf("warm estimate %v not below cold %v", sel.Est, cold.Est)
	}
}

// TestSelectRoutesAroundFaultedReplica: observed faults demote a replica
// below the confidence floor and selection avoids it.
func TestSelectRoutesAroundFaultedReplica(t *testing.T) {
	fx := newFleet(t, DefaultConfig(), 64*testPage)
	now := fx.k.Clock.Now()
	fx.tab.ObserveFault(fx.f.Replica(0).Dev, faults.TimeoutExtra, now)
	if conf := fx.tab.Confidence(fx.f.Replica(0).Dev, now); conf >= fx.f.cfg.ConfidenceFloor {
		t.Fatalf("one timeout left confidence at %v, floor %v", conf, fx.f.cfg.ConfidenceFloor)
	}
	sel, err := fx.f.Select(0, 4*testPage, now)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Primary == 0 || sel.Secondary == 0 {
		t.Fatalf("selection %+v still routes to the demoted replica", sel)
	}
}

// TestSelectDegradedFallback: with every replica demoted, selection flags
// Degraded and weights estimates by confidence instead of refusing.
func TestSelectDegradedFallback(t *testing.T) {
	fx := newFleet(t, DefaultConfig(), 64*testPage)
	now := fx.k.Clock.Now()
	for i := 0; i < fx.f.Replicas(); i++ {
		fx.tab.ObserveFault(fx.f.Replica(i).Dev, faults.TimeoutExtra, now)
	}
	// Replica 3 faulted twice: strictly worse confidence than the rest.
	fx.tab.ObserveFault(fx.f.Replica(3).Dev, faults.TimeoutExtra, now)
	sel, err := fx.f.Select(0, 4*testPage, now)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Degraded {
		t.Fatal("all-demoted fleet not flagged degraded")
	}
	if sel.Primary == 3 {
		t.Fatal("confidence weighting picked the twice-faulted replica")
	}
}

// TestProbeCadence: every ProbeEvery-th selection probes a demoted
// replica, round-robin when several are demoted.
func TestProbeCadence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbeEvery = 4
	fx := newFleet(t, cfg, 64*testPage)
	now := fx.k.Clock.Now()
	fx.tab.ObserveFault(fx.f.Replica(1).Dev, faults.TimeoutExtra, now)
	probes := 0
	for i := 0; i < 16; i++ {
		sel, err := fx.f.Select(0, testPage, now)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Probe {
			probes++
			if sel.Primary != 1 {
				t.Fatalf("probe routed to replica %d, want demoted 1", sel.Primary)
			}
			if sel.Secondary == 1 {
				t.Fatal("probe's hedge target is the probed replica itself")
			}
		}
	}
	if probes != 4 {
		t.Fatalf("%d probes in 16 selections at ProbeEvery=4, want 4", probes)
	}
	if got := fx.f.Replica(1).Probes; got != 4 {
		t.Fatalf("replica probe counter %d, want 4", got)
	}
}

// engineFor queues every replica under FCFS and wires the load source.
func engineFor(fx *fixture) *iosched.Engine {
	e := iosched.NewEngine(fx.k)
	for i := 0; i < fx.f.Replicas(); i++ {
		e.Queue(fx.f.Replica(i).Dev, iosched.NewFCFS())
	}
	fx.tab.SetLoad(e)
	fx.f.ObserveLateFaults(e)
	return e
}

// TestHedgeLoserFaultFeedsHealth: a faulted primary masked by the winning
// secondary is still observed (through the engine's orphan observer) and
// demotes the replica — health accounting survives the race.
func TestHedgeLoserFaultFeedsHealth(t *testing.T) {
	fx := newFleet(t, DefaultConfig(), 64*testPage)
	dev0 := fx.f.Replica(0).Dev
	injectReplica(fx, 0, faults.Config{Seed: 4, PFault: 1, MaxConsecutive: 1})
	e := engineFor(fx)
	var out Read
	e.AddStream(0, fx.f.ReadProgram(PolicySLEDHedge, 0, 4*testPage, &out))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Err != nil || out.Failed != 0 {
		t.Fatalf("masked read outcome %+v, want a clean hedged completion", out)
	}
	if conf := fx.tab.Confidence(dev0, fx.k.Clock.Now()); conf >= DefaultConfig().ConfidenceFloor {
		t.Fatalf("replica 0 confidence %v after a masked fault, want demotion below %v",
			conf, DefaultConfig().ConfidenceFloor)
	}
}

func TestReadSucceedsAndCountsServed(t *testing.T) {
	fx := newFleet(t, DefaultConfig(), 64*testPage)
	e := engineFor(fx)
	var out Read
	e.AddStream(0, fx.f.ReadProgram(PolicySLED, 0, 4*testPage, &out))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Err != nil || out.Attempts != 1 || out.Failed != 0 {
		t.Fatalf("clean read outcome %+v", out)
	}
	if out.Dev != fx.f.Replica(0).Dev {
		t.Fatalf("read served by %v, want replica 0 (index tie-break)", out.Dev)
	}
	if fx.f.Replica(0).Issued != 1 {
		t.Fatalf("replica 0 issued %d, want 1", fx.f.Replica(0).Issued)
	}
}

// TestReadFailoverWithinBudget: the primary faults, the read backs off
// and fails over to another replica, and succeeds within budget.
func TestReadFailoverWithinBudget(t *testing.T) {
	fx := newFleet(t, DefaultConfig(), 64*testPage)
	injectReplica(fx, 0, faults.Config{Seed: 1, PFault: 1, MaxConsecutive: 1})
	e := engineFor(fx)
	var out Read
	e.AddStream(0, fx.f.ReadProgram(PolicySLED, 0, 4*testPage, &out))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Err != nil {
		t.Fatalf("failover did not recover: %v", out.Err)
	}
	if out.Failed != 1 || out.Attempts != 2 {
		t.Fatalf("outcome %+v, want one absorbed fault and two attempts", out)
	}
	if out.Dev == fx.f.Replica(0).Dev {
		t.Fatal("read reports the faulted replica as the server")
	}
	if fx.f.Replica(0).Faults != 1 {
		t.Fatalf("replica 0 fault counter %d, want 1", fx.f.Replica(0).Faults)
	}
	// The observed fault demoted replica 0 for subsequent selections.
	if conf := fx.tab.Confidence(fx.f.Replica(0).Dev, fx.k.Clock.Now()); conf >= fx.f.cfg.ConfidenceFloor {
		t.Fatalf("fault not fed to the health observer: confidence %v", conf)
	}
}

// TestReadBudgetExhausted: with every replica faulting, the read gives up
// once the per-replica budgets are spent and surfaces the error.
func TestReadBudgetExhausted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Replicas = 2
	cfg.Retry.MaxAttempts = 1
	fx := newFleet(t, cfg, 64*testPage)
	injectReplica(fx, 0, faults.Config{Seed: 2, PFault: 1, MaxConsecutive: 3})
	injectReplica(fx, 1, faults.Config{Seed: 3, PFault: 1, MaxConsecutive: 3})
	e := engineFor(fx)
	var out Read
	e.AddStream(0, fx.f.ReadProgram(PolicySLED, 0, testPage, &out))
	if err := e.Run(); err == nil {
		t.Fatal("stream did not surface the exhausted-budget error")
	}
	if out.Err == nil || out.Attempts != 2 || out.Failed != 2 {
		t.Fatalf("outcome %+v, want two failed attempts and an error", out)
	}
}

// TestHedgeMasksFaultedPrimary: the primary's timeout fault costs far
// more than the hedge deadline, so the secondary wins the race and the
// read completes cleanly — tail-latency insurance in action.
func TestHedgeMasksFaultedPrimary(t *testing.T) {
	fx := newFleet(t, DefaultConfig(), 64*testPage)
	injectReplica(fx, 0, faults.Config{Seed: 4, PFault: 1, MaxConsecutive: 1})
	e := engineFor(fx)
	var out Read
	e.AddStream(0, fx.f.ReadProgram(PolicySLEDHedge, 0, 4*testPage, &out))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Err != nil {
		t.Fatalf("hedged read surfaced the primary's fault: %v", out.Err)
	}
	if !out.Hedged {
		t.Fatal("hedge did not fire against a timing-out primary")
	}
	if out.Dev == fx.f.Replica(0).Dev {
		t.Fatal("faulted primary won the hedge race against a healthy secondary")
	}
	// The fleet finished the read at roughly hedge delay + service, far
	// below the 1.1 s timeout the unhedged read would have eaten before
	// failing over. (FinishTime is absolute; the stream started at the
	// engine base, after calibration advanced the kernel clock.)
	if ft := e.FinishTime(0) - e.Base(); ft >= faults.TimeoutExtra {
		t.Fatalf("hedged read took %v, not below the %v timeout", ft, faults.TimeoutExtra)
	}
}

// TestDemotionAndProbeBackRecovery live-tests graceful degradation end to
// end: a replica faults under injection and is demoted; the injector is
// removed; probe traffic and penalty decay win the replica its traffic
// back within a bounded number of selections.
func TestDemotionAndProbeBackRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbeEvery = 4
	fx := newFleet(t, cfg, 64*testPage)
	fx.tab.SetHealthHalfLife(500 * simclock.Millisecond)
	dev0 := fx.f.Replica(0).Dev
	raw := injectReplica(fx, 0, faults.Config{Seed: 5, PFault: 1, MaxConsecutive: 1})

	// Phase 1: reads under injection fail over and demote replica 0.
	e := engineFor(fx)
	var out Read
	e.AddStream(0, fx.f.ReadProgram(PolicySLED, 0, 4*testPage, &out))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Err != nil || out.Failed == 0 {
		t.Fatalf("phase 1 outcome %+v, want an absorbed fault", out)
	}
	if conf := fx.tab.Confidence(dev0, fx.k.Clock.Now()); conf >= cfg.ConfidenceFloor {
		t.Fatalf("replica 0 not demoted: confidence %v", conf)
	}

	// Phase 2: the server recovers (injector removed). Selections keep
	// probing replica 0 on the cadence while the penalty decays. Select
	// on a region no server cache was warmed for — phase 1's failover
	// warmed another replica's cache for [0, 4 pages), which would keep
	// beating replica 0 on estimate forever regardless of health.
	fx.k.Devices.Replace(dev0, raw)
	coldOff := int64(32 * testPage)
	recovered := -1
	for i := 0; i < 200; i++ {
		fx.k.Clock.Advance(250 * simclock.Millisecond)
		sel, err := fx.f.Select(coldOff, 4*testPage, fx.k.Clock.Now())
		if err != nil {
			t.Fatal(err)
		}
		if !sel.Probe && sel.Primary == 0 {
			recovered = i
			break
		}
	}
	if recovered < 0 {
		t.Fatal("recovered replica never regained non-probe traffic")
	}
	if probes := fx.f.Replica(0).Probes; probes == 0 {
		t.Fatal("no probes were routed to the demoted replica")
	}
	// Bounded recovery: penalty 1.1 s over base ~tens of ms at a 500 ms
	// half-life is gone within ~10 s of virtual time; the loop advanced
	// 250 ms per pick, so recovery must land well inside the window.
	if recovered > 50 {
		t.Fatalf("recovery took %d selections, want a bounded handful", recovered)
	}
}

// TestRRRotation: the blind policy rotates across replicas regardless of
// cache or health state.
func TestRRRotation(t *testing.T) {
	fx := newFleet(t, DefaultConfig(), 64*testPage)
	e := engineFor(fx)
	outs := make([]Read, 6)
	for i := range outs {
		e.AddStream(simclock.Duration(i)*simclock.Second, fx.f.ReadProgram(PolicyRR, 0, testPage, &outs[i]))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		want := fx.f.Replica(i % fx.f.Replicas()).Dev
		if outs[i].Dev != want {
			t.Fatalf("read %d served by %v, want rotation to %v", i, outs[i].Dev, want)
		}
	}
}

// TestFleetDeterminism: identical runs produce identical schedules and
// identical per-replica counters.
func TestFleetDeterminism(t *testing.T) {
	run := func() ([]simclock.Duration, []int64) {
		cfg := DefaultConfig()
		cfg.ProbeEvery = 4
		fx := newFleet(t, cfg, 64*testPage)
		injectReplica(fx, 1, faults.Config{Seed: 9, PFault: 0.5, MaxConsecutive: 2})
		e := engineFor(fx)
		outs := make([]Read, 12)
		for i := range outs {
			policy := PolicySLEDHedge
			if i%3 == 0 {
				policy = PolicySLED
			}
			off := int64(i%8) * 4 * testPage
			e.AddStream(simclock.Duration(i)*20*simclock.Millisecond,
				fx.f.ReadProgram(policy, off, 2*testPage, &outs[i]))
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		times := make([]simclock.Duration, len(outs))
		for i := range outs {
			times[i] = e.FinishTime(iosched.StreamID(i))
		}
		counters := make([]int64, 0, fx.f.Replicas()*3)
		for i := 0; i < fx.f.Replicas(); i++ {
			r := fx.f.Replica(i)
			counters = append(counters, r.Issued, r.Faults, r.Probes)
		}
		return times, counters
	}
	t1, c1 := run()
	t2, c2 := run()
	if !reflect.DeepEqual(t1, t2) || !reflect.DeepEqual(c1, c2) {
		t.Fatalf("identical fleet runs diverged:\n%v\n%v\n%v\n%v", t1, t2, c1, c2)
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyRR, PolicySLED, PolicySLEDHedge} {
		got, ok := ParsePolicy(p.String())
		if !ok || got != p {
			t.Fatalf("policy %v does not round-trip", p)
		}
	}
	if _, ok := ParsePolicy("bogus"); ok {
		t.Fatal("bogus policy parsed")
	}
}

// TestReplicatedContentIdentical: every replica's copy carries the same
// bytes, so a hedge winner's identity never changes the data.
func TestReplicatedContentIdentical(t *testing.T) {
	fx := newFleet(t, DefaultConfig(), 8*testPage)
	want := workload.NewText(1, 8*testPage, testPage).ReadAll()
	for i := 0; i < fx.f.Replicas(); i++ {
		f, err := fx.k.Open(formatPath("/data", i))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8*testPage)
		if _, err := f.ReadAt(got, 0); err != nil {
			f.Close()
			t.Fatal(err)
		}
		f.Close()
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("replica %d byte %d differs from the content seed", i, j)
			}
		}
	}
}

func formatPath(prefix string, i int) string {
	return prefix + ".r" + string(rune('0'+i))
}
