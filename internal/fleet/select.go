package fleet

import (
	"fmt"

	"sleds/internal/core"
	"sleds/internal/simclock"
)

// estimate is one replica's candidacy for a read: the expected delivery
// time in seconds and the confidence FSLEDS_GET stamped on the estimate.
type estimate struct {
	sec  float64
	conf float64
	ok   bool // false when the replica is excluded (budget exhausted)
}

// Selection is the selector's verdict for one read.
type Selection struct {
	// Primary is the replica index to issue the read against; Secondary
	// is the hedge target (-1 when no second candidate exists).
	Primary, Secondary int
	// HedgeDelay is the virtual-time hedge deadline derived from the
	// SLED estimate: HedgeMult x the expected delivery of the baseline
	// candidate, floored at MinHedgeDelay.
	HedgeDelay simclock.Duration
	// Probe marks a selection that deliberately routed to a demoted
	// replica to rediscover it.
	Probe bool
	// Degraded marks a selection made with every candidate below the
	// confidence floor (the confidence-weighted fallback).
	Degraded bool
	// Est and Conf are the primary's estimated delivery (seconds) and
	// confidence.
	Est, Conf float64
}

// estimateReplica computes the expected delivery time of reading
// [off, off+n) of the replicated file from replica r at virtual time now.
//
// The base comes from the replica's SLED vector (core.QueryAppend on the
// replica's copy of the file): first-overlap latency — with queue depth,
// in-flight remainder, and decayed fault penalty already folded in by the
// table — plus the transfer time of the overlapping bytes at each
// region's bandwidth. Confidence is the minimum over the overlapping
// SLEDs, i.e. exactly what FSLEDS_GET reports to an application.
//
// On top of the SLED base the client folds in what it knows of the
// replica's server cache: the server-cached fraction of the region skips
// the server disk's positioning, so the base sheds that fraction of the
// device's unloaded service latency down to the wire RTT. Queue wait,
// health penalty, and transfer time are unaffected — a cached byte still
// waits in the same queue and crosses the same wire.
//
// The per-pick QueryAppend is served by the table's skeleton memo when
// the replica's residency and the table config are unchanged (the common
// case between faults): only the O(devices) dynamic overlay re-runs, so
// estimating all replicas stays cheap even on heavily fragmented files.
func (f *Fleet) estimateReplica(r *Replica, off, n int64, now simclock.Duration) (estimate, error) {
	sleds, err := core.QueryAppend(f.scratch, f.k, f.tab, r.inode)
	if err != nil {
		return estimate{}, err
	}
	f.scratch = sleds
	end := off + n
	var sec, conf float64
	conf = 1
	first := true
	for i := range sleds {
		s := &sleds[i]
		if s.End() <= off || s.Offset >= end {
			continue
		}
		lo, hi := s.Offset, s.End()
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		if first {
			sec += s.Latency
			first = false
		}
		if s.Bandwidth > 0 {
			sec += float64(hi-lo) / s.Bandwidth
		}
		if s.Confidence < conf {
			conf = s.Confidence
		}
	}
	if first {
		return estimate{}, fmt.Errorf("fleet: read [%d,%d) outside the replicated file", off, end)
	}
	// Server-cache adjustment: the cached fraction of the region avoids
	// the disk's unloaded service latency, paying only the wire RTT.
	if cached := r.srv.CachedBytes(r.inode.Extent()+off, n); cached > 0 {
		if e, ok := f.tab.Device(r.Dev); ok {
			rttSec := f.cfg.Server.RTT.Seconds()
			if save := e.Latency - rttSec; save > 0 {
				sec -= float64(cached) / float64(n) * save
				if sec < rttSec {
					sec = rttSec
				}
			}
		}
	}
	return estimate{sec: sec, conf: conf, ok: true}, nil
}

// Select picks the replica(s) for one read of [off, off+n) at virtual
// time now, consulting every replica's SLED estimate. See selectFrom for
// the policy; Select considers all replicas eligible.
func (f *Fleet) Select(off, n int64, now simclock.Duration) (Selection, error) {
	return f.selectFrom(nil, off, n, now)
}

// selectFrom is Select restricted to replicas i with eligible[i] (nil
// means all) — the Read driver excludes replicas whose retry budget for
// the current read is spent.
//
// Policy: replicas at or above the confidence floor compete on estimated
// delivery; the cheapest wins, the runner-up becomes the hedge target.
// When every eligible replica is below the floor no estimate is worth
// trusting outright, so the fallback weights estimates by confidence
// (score = est/conf) — a barely-degraded replica with a good estimate
// beats a collapsed one with a suspiciously cheap number. Every
// ProbeEvery-th selection with demotions outstanding routes to a demoted
// replica (round-robin) instead, keeping the hedge on the best healthy
// candidate, so a recovered server is rediscovered within a bounded
// number of selections. All tie-breaks are by ascending replica index:
// selection is a pure function of (estimates, pick counter), so
// schedules are deterministic.
func (f *Fleet) selectFrom(eligible []bool, off, n int64, now simclock.Duration) (Selection, error) {
	nr := len(f.replicas)
	anyEligible := false
	for i, r := range f.replicas {
		if eligible != nil && !eligible[i] {
			f.ests[i] = estimate{}
			continue
		}
		est, err := f.estimateReplica(r, off, n, now)
		if err != nil {
			return Selection{}, err
		}
		f.ests[i] = est
		anyEligible = true
	}
	if !anyEligible {
		return Selection{}, fmt.Errorf("fleet: no eligible replica")
	}
	floor := f.cfg.ConfidenceFloor

	// Partition: healthy replicas compete on est; if none, everyone
	// competes on est/conf.
	best, second := -1, -1
	healthyCount := 0
	for i := 0; i < nr; i++ {
		if f.ests[i].ok && f.ests[i].conf >= floor {
			healthyCount++
		}
	}
	degraded := healthyCount == 0
	score := func(i int) float64 {
		if !degraded {
			return f.ests[i].sec
		}
		c := f.ests[i].conf
		if c < 1e-9 {
			c = 1e-9
		}
		return f.ests[i].sec / c
	}
	inPool := func(i int) bool {
		if !f.ests[i].ok {
			return false
		}
		return degraded || f.ests[i].conf >= floor
	}
	for i := 0; i < nr; i++ {
		if !inPool(i) {
			continue
		}
		switch {
		case best < 0 || score(i) < score(best):
			second = best
			best = i
		case second < 0 || score(i) < score(second):
			second = i
		}
	}

	sel := Selection{Primary: best, Secondary: second, Degraded: degraded}
	f.picks++

	// Probe cadence: divert this pick to a demoted replica when due.
	if !degraded && healthyCount < nr && f.cfg.ProbeEvery > 0 && f.picks%int64(f.cfg.ProbeEvery) == 0 {
		k := f.probeRR
		f.probeRR++
		demotedIdx := -1
		seen := 0
		for i := 0; i < nr; i++ {
			if f.ests[i].ok && f.ests[i].conf < floor {
				if seen == k%countDemoted(f.ests, floor) {
					demotedIdx = i
					break
				}
				seen++
			}
		}
		if demotedIdx >= 0 {
			sel.Secondary = sel.Primary // hedge covers the probe
			sel.Primary = demotedIdx
			sel.Probe = true
			f.replicas[demotedIdx].Probes++
		}
	}

	sel.Est = f.ests[sel.Primary].sec
	sel.Conf = f.ests[sel.Primary].conf

	// Hedge deadline from the baseline candidate: the primary's estimate
	// normally, the healthy secondary's when the primary is a probe (the
	// probe's own estimate carries the penalty being probed).
	base := sel.Est
	if sel.Probe && sel.Secondary >= 0 {
		base = f.ests[sel.Secondary].sec
	}
	delay := simclock.Duration(f.cfg.HedgeMult * base * float64(simclock.Second))
	if delay < f.cfg.MinHedgeDelay {
		delay = f.cfg.MinHedgeDelay
	}
	sel.HedgeDelay = delay
	return sel, nil
}

// countDemoted counts eligible replicas below the floor.
func countDemoted(ests []estimate, floor float64) int {
	n := 0
	for i := range ests {
		if ests[i].ok && ests[i].conf < floor {
			n++
		}
	}
	if n == 0 {
		return 1 // never used as a modulus when no demotions exist
	}
	return n
}
