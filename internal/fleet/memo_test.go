package fleet

import (
	"testing"

	"sleds/internal/simclock"
)

// TestSelectMemoEquivalence drives two identical fleets — one with the
// sleds table's skeleton memo at its default capacity, one with it
// disabled — through the same pick sequence under fault churn and health
// decay, and demands bit-identical Selections (estimates are float64:
// equality here is equality of every folded term). Replica files are
// read through device I/O, never the client page cache, so their
// skeletons stay valid across the whole sequence — the memo's best case,
// which is exactly why it must not be able to drift.
func TestSelectMemoEquivalence(t *testing.T) {
	fxOn := newFleet(t, DefaultConfig(), 64*testPage)
	fxOff := newFleet(t, DefaultConfig(), 64*testPage)
	fxOff.tab.SetMemoCapacity(0)
	if fxOn.tab.MemoCapacity() == 0 {
		t.Fatal("default table should have the memo enabled")
	}

	step := func(i int) {
		for _, fx := range []*fixture{fxOn, fxOff} {
			now := fx.k.Clock.Now()
			switch i % 5 {
			case 2:
				fx.tab.ObserveFault(fx.f.Replica(i%fx.f.Replicas()).Dev,
					simclock.Duration(5+i)*simclock.Millisecond, now)
			case 4:
				fx.k.Clock.Advance(3 * simclock.Second)
			}
		}
		off := int64(i%13) * testPage
		selOn, errOn := fxOn.f.Select(off, 4*testPage, fxOn.k.Clock.Now())
		selOff, errOff := fxOff.f.Select(off, 4*testPage, fxOff.k.Clock.Now())
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("step %d error divergence: memo=%v direct=%v", i, errOn, errOff)
		}
		if selOn != selOff {
			t.Fatalf("step %d selection divergence:\nmemo:   %+v\ndirect: %+v", i, selOn, selOff)
		}
	}
	for i := 0; i < 60; i++ {
		step(i)
	}
	if st := fxOn.tab.MemoStats(); st.Hits == 0 {
		t.Fatalf("memoized fleet never hit the skeleton cache: %+v", st)
	}
}
