package fleet

import (
	"testing"

	"sleds/internal/iosched"
	"sleds/internal/simclock"
)

// BenchmarkSelect measures the hot selector path: four QueryAppend-based
// estimates plus the partition/probe logic, on reused scratch — the
// per-read client-side overhead of SLED-guided routing.
func BenchmarkSelect(b *testing.B) {
	fx := newFleet(b, DefaultConfig(), 64*testPage)
	now := fx.k.Clock.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.f.Select(0, 4*testPage, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadProgram measures one complete logical read through the
// Read state machine under RunProgram (no engine: every access completes
// in place), per policy.
func BenchmarkReadProgram(b *testing.B) {
	for _, pol := range []Policy{PolicyRR, PolicySLED} {
		b.Run(pol.String(), func(b *testing.B) {
			fx := newFleet(b, DefaultConfig(), 64*testPage)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var out Read
				if err := iosched.RunProgram(fx.k, fx.f.ReadProgram(pol, 0, 4*testPage, &out)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineHedgedReads measures engine-driven hedged reads: 64
// streams, one hedged read each, across the queued replica fleet.
func BenchmarkEngineHedgedReads(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fx := newFleet(b, DefaultConfig(), 64*testPage)
		e := engineFor(fx)
		outs := make([]Read, 64)
		for s := range outs {
			off := int64(s%16) * 4 * testPage
			e.AddStream(simclock.Duration(s)*simclock.Millisecond,
				fx.f.ReadProgram(PolicySLEDHedge, off, 4*testPage, &outs[s]))
		}
		b.StartTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
