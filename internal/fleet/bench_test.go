package fleet

import (
	"fmt"
	"testing"

	"sleds/internal/iosched"
	"sleds/internal/simclock"
	"sleds/internal/vfs"
)

// BenchmarkSelect measures the hot selector path: four QueryAppend-based
// estimates plus the partition/probe logic, on reused scratch — the
// per-read client-side overhead of SLED-guided routing.
func BenchmarkSelect(b *testing.B) {
	fx := newFleet(b, DefaultConfig(), 64*testPage)
	now := fx.k.Clock.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.f.Select(0, 4*testPage, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectColdMemo is BenchmarkSelect with the sleds table's
// skeleton memo disabled: every replica estimate re-walks residency from
// scratch. The gap between the two is the memo's contribution to pick
// latency.
func BenchmarkSelectColdMemo(b *testing.B) {
	fx := newFleet(b, DefaultConfig(), 64*testPage)
	fx.tab.SetMemoCapacity(0)
	now := fx.k.Clock.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.f.Select(0, 4*testPage, now); err != nil {
			b.Fatal(err)
		}
	}
}

// fragmentReplicas shatters every replica file's client-cache residency
// into single-page runs: strided one-page reads, interleaved across
// replicas so the shared LRU keeps an even mix. Selection estimates then
// walk dozens of run/gap transitions per replica — the workload the
// skeleton memo exists for.
func fragmentReplicas(b *testing.B, fx *fixture, fileSize int64) {
	b.Helper()
	files := make([]*vfs.File, fx.f.Replicas())
	for i := range files {
		f, err := fx.k.Open(fmt.Sprintf("/data.r%d", i))
		if err != nil {
			b.Fatal(err)
		}
		files[i] = f
	}
	buf := make([]byte, testPage)
	for off := int64(0); off < fileSize; off += 4 * testPage {
		for _, f := range files {
			if _, err := f.ReadAtMapped(buf, off); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, f := range files {
		f.Close()
	}
}

// BenchmarkSelectFragmented is Select against replicas whose client-side
// residency is shattered into single-page runs (the post-churn steady
// state of a live fleet). Warm memo: every pick fast-copies three cached
// skeletons. Compare BenchmarkSelectFragmentedColdMemo.
func BenchmarkSelectFragmented(b *testing.B) {
	const fileSize = 256 * testPage
	fx := newFleet(b, DefaultConfig(), fileSize)
	fragmentReplicas(b, fx, fileSize)
	now := fx.k.Clock.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.f.Select(0, 4*testPage, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectFragmentedColdMemo re-derives every replica's run/gap
// decomposition on each pick (memo disabled).
func BenchmarkSelectFragmentedColdMemo(b *testing.B) {
	const fileSize = 256 * testPage
	fx := newFleet(b, DefaultConfig(), fileSize)
	fx.tab.SetMemoCapacity(0)
	fragmentReplicas(b, fx, fileSize)
	now := fx.k.Clock.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.f.Select(0, 4*testPage, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadProgram measures one complete logical read through the
// Read state machine under RunProgram (no engine: every access completes
// in place), per policy.
func BenchmarkReadProgram(b *testing.B) {
	for _, pol := range []Policy{PolicyRR, PolicySLED} {
		b.Run(pol.String(), func(b *testing.B) {
			fx := newFleet(b, DefaultConfig(), 64*testPage)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var out Read
				if err := iosched.RunProgram(fx.k, fx.f.ReadProgram(pol, 0, 4*testPage, &out)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineHedgedReads measures engine-driven hedged reads: 64
// streams, one hedged read each, across the queued replica fleet.
func BenchmarkEngineHedgedReads(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fx := newFleet(b, DefaultConfig(), 64*testPage)
		e := engineFor(fx)
		outs := make([]Read, 64)
		for s := range outs {
			off := int64(s%16) * 4 * testPage
			e.AddStream(simclock.Duration(s)*simclock.Millisecond,
				fx.f.ReadProgram(PolicySLEDHedge, off, 4*testPage, &outs[s]))
		}
		b.StartTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
