package fleet

import (
	"errors"
	"fmt"

	"sleds/internal/device"
	"sleds/internal/iosched"
	"sleds/internal/simclock"
)

// Policy selects how the client routes a read across the fleet.
type Policy int

const (
	// PolicyRR is blind round-robin: no estimates, no health — the
	// baseline the experiments compare against. Failover still applies
	// (the next replica in rotation is tried on a fault).
	PolicyRR Policy = iota
	// PolicySLED routes by SLED estimate (load, health, server-cache
	// aware) with demotion and probe-back.
	PolicySLED
	// PolicySLEDHedge is PolicySLED plus a hedged read against the
	// runner-up replica, armed at the estimate-derived deadline.
	PolicySLEDHedge
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyRR:
		return "rr"
	case PolicySLED:
		return "sled"
	case PolicySLEDHedge:
		return "hedge"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps a policy name to its Policy.
func ParsePolicy(s string) (Policy, bool) {
	switch s {
	case "rr":
		return PolicyRR, true
	case "sled":
		return PolicySLED, true
	case "hedge":
		return PolicySLEDHedge, true
	default:
		return 0, false
	}
}

// ObserveLateFaults wires the engine's orphan observer to the fleet's
// health table: a hedge loser that faults after losing the race never
// surfaces its error to any stream, but the failure is real — without
// this a degraded replica whose faults are always masked by winning
// secondaries would never be demoted. Call once per engine, before Run.
func (f *Fleet) ObserveLateFaults(e *iosched.Engine) {
	e.SetOrphanObserver(func(dev device.ID, err error, at simclock.Duration) {
		var fault *device.Fault
		if f.tab != nil && errors.As(err, &fault) {
			f.tab.ObserveFault(fault.Dev, fault.Extra, at)
		}
	})
}

// Read is one logical read of the replicated file, driven as a
// sub-state-machine inside an iosched Program: call Step with the
// previous Result to get the next Op until it reports done, then inspect
// Err/Dev/Attempts. Failover is built in — a faulted completion feeds
// the table's health observer, burns the replica's per-read retry
// budget, backs off (doubling, capped), and reselects among replicas
// with budget remaining.
type Read struct {
	f      *Fleet
	policy Policy
	off, n int64

	attempts []int // per-replica attempts consumed this read
	backoff  simclock.Duration
	target   int  // replica index of the attempt in flight
	hedgeTo  int  // secondary's replica index, -1 when not hedged
	issued   bool // an attempt's Op is outstanding
	sleeping bool // a backoff Sleep is outstanding

	// Outcome, valid once Step reports done.
	Err      error
	Dev      device.ID // replica device that completed the read
	Attempts int       // attempts issued (1 = first try succeeded)
	Hedged   bool      // any attempt's hedge deadline fired
	Failed   int       // faulted completions absorbed by failover
}

// StartRead begins one logical read of [off, off+n) under the policy.
// The zero-valued read issues its first Op at the first Step call.
func (f *Fleet) StartRead(policy Policy, off, n int64) *Read {
	return &Read{
		f:        f,
		policy:   policy,
		off:      off,
		n:        n,
		attempts: make([]int, len(f.replicas)),
		backoff:  f.cfg.Retry.Backoff,
		target:   -1,
		hedgeTo:  -1,
	}
}

// replicaByDev maps a completion's device ID back to its replica index
// (-1 when the device is not a fleet replica).
func (f *Fleet) replicaByDev(id device.ID) int {
	for i, r := range f.replicas {
		if r.Dev == id {
			return i
		}
	}
	return -1
}

// eligible reports which replicas still have retry budget this read.
func (r *Read) eligible() (mask []bool, any bool) {
	mask = make([]bool, len(r.attempts))
	for i, a := range r.attempts {
		if a < r.f.cfg.Retry.MaxAttempts {
			mask[i] = true
			any = true
		}
	}
	return mask, any
}

// Step feeds the outcome of the previously returned Op (the zero Result
// on the first call) and returns the next Op. done reports completion:
// when true the Op is meaningless and the outcome fields are valid.
func (r *Read) Step(h *iosched.Handle, prev iosched.Result) (op iosched.Op, done bool) {
	if r.issued {
		r.issued = false
		if prev.HedgeFired {
			r.Hedged = true
		}
		if prev.Err == nil {
			r.Dev = r.winner(prev)
			return iosched.Op{}, true
		}
		// A faulted completion: observe it against the replica that
		// produced it, burn its budget, and fail over.
		idx := r.target
		if dev := r.winner(prev); dev != 0 {
			if byDev := r.f.replicaByDev(dev); byDev >= 0 {
				idx = byDev
			}
		}
		r.Failed++
		r.f.replicas[idx].Faults++
		var fault *device.Fault
		if r.f.tab != nil && errors.As(prev.Err, &fault) {
			r.f.tab.ObserveFault(fault.Dev, fault.Extra, h.Now())
		}
		if _, any := r.eligible(); !any {
			r.Err = fmt.Errorf("fleet: read [%d,+%d) failed on all replicas within budget: %w", r.off, r.n, prev.Err)
			return iosched.Op{}, true
		}
		r.sleeping = true
		back := r.backoff
		if back > r.f.cfg.Retry.BackoffCap {
			back = r.f.cfg.Retry.BackoffCap
		}
		r.backoff = back * 2
		return iosched.Sleep(back), false
	}
	if r.sleeping {
		r.sleeping = false
	}
	return r.issue(h)
}

// winner returns the device that completed the previous attempt: the
// hedge winner when hedged, the plain target otherwise.
func (r *Read) winner(prev iosched.Result) device.ID {
	if r.hedgeTo >= 0 {
		return prev.Dev
	}
	if r.target >= 0 {
		return r.f.replicas[r.target].Dev
	}
	return 0
}

// issue selects a replica under the policy and returns its read Op.
func (r *Read) issue(h *iosched.Handle) (iosched.Op, bool) {
	mask, any := r.eligible()
	if !any {
		r.Err = fmt.Errorf("fleet: read [%d,+%d): retry budget exhausted", r.off, r.n)
		return iosched.Op{}, true
	}
	r.hedgeTo = -1
	switch r.policy {
	case PolicyRR:
		// Blind rotation over replicas with budget left.
		nr := len(r.f.replicas)
		idx := -1
		for probe := 0; probe < nr; probe++ {
			cand := (r.f.rr + probe) % nr
			if mask[cand] {
				idx = cand
				r.f.rr = (cand + 1) % nr
				break
			}
		}
		r.target = idx
	default:
		sel, err := r.f.selectFrom(mask, r.off, r.n, h.Now())
		if err != nil {
			r.Err = err
			return iosched.Op{}, true
		}
		r.target = sel.Primary
		if r.policy == PolicySLEDHedge && sel.Secondary >= 0 {
			r.hedgeTo = sel.Secondary
			rep, sec := r.f.replicas[sel.Primary], r.f.replicas[sel.Secondary]
			rep.Issued++
			r.attempts[sel.Primary]++
			r.Attempts++
			r.issued = true
			return iosched.HedgedDevReadAt(
				rep.Dev, rep.inode.Extent()+r.off,
				sec.Dev, sec.inode.Extent()+r.off,
				r.n, sel.HedgeDelay), false
		}
	}
	rep := r.f.replicas[r.target]
	rep.Issued++
	r.attempts[r.target]++
	r.Attempts++
	r.issued = true
	return iosched.DevRead(rep.Dev, rep.inode.Extent()+r.off, r.n), false
}

// ReadProgram wraps one read as a complete Program: useful for tests and
// single-shot clients. The outcome lands in *out.
func (f *Fleet) ReadProgram(policy Policy, off, n int64, out *Read) iosched.Program {
	rd := f.StartRead(policy, off, n)
	return iosched.ProgramFunc(func(h *iosched.Handle, prev iosched.Result) iosched.Op {
		op, done := rd.Step(h, prev)
		if done {
			if out != nil {
				*out = *rd
			}
			return iosched.Exit(rd.Err)
		}
		return op
	})
}
