// Command fimgbin runs the ported LHEASOFT fimgbin on a synthetic FITS
// image: a rectangular boxcar rebin with a selectable data reduction
// factor, timed with and without SLEDs. The paper's observation — the
// write traffic of low reduction factors erodes the SLEDs gain — is
// visible by comparing -factor 4 against -factor 16.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sleds"
	"sleds/internal/apps/fitsapp"
	"sleds/internal/simclock"
)

func main() {
	width := flag.Int("width", 1024, "image width in pixels")
	height := flag.Int("height", 24576, "image height in pixels")
	factor := flag.Int("factor", 4, "data reduction factor (4 or 16)")
	cacheMB := flag.Float64("cache", 44, "file cache size in MB")
	flag.Parse()

	sys, err := sleds.NewSystem(sleds.Config{
		CacheBytes:  int64(*cacheMB * (1 << 20)),
		LHEAProfile: true,
	})
	if err != nil {
		fatal(err)
	}
	if err := sys.CreateFITSImage("/data/img.fits", sleds.OnDisk, 7, *width, *height); err != nil {
		fatal(err)
	}
	n, _ := sys.Stat("/data/img.fits")
	fmt.Printf("fimgbin on %dx%d image (%.4g MB), %dx reduction, %.4g MB cache\n\n",
		*width, *height, float64(n.Size())/(1<<20), *factor, *cacheMB)

	for i, useSLEDs := range []bool{false, true} {
		f, _ := sys.Open("/data/img.fits")
		io.Copy(io.Discard, f)
		f.Close()

		out := fmt.Sprintf("/data/out%d.fits", i)
		sys.ResetStats()
		start := sys.Now()
		outIm, err := fitsapp.Fimgbin(sys.Env(useSLEDs), "/data/img.fits", out, *factor, sys.Device(sleds.OnDisk))
		if err != nil {
			fatal(err)
		}
		elapsed := float64(sys.Now()-start) / float64(simclock.Second)
		mode := "without SLEDs"
		if useSLEDs {
			mode = "with SLEDs   "
		}
		fmt.Printf("%s  %8.3fs elapsed  %7d faults   (output %dx%d)\n",
			mode, elapsed, sys.Stats().Faults, outIm.Width, outIm.Height)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fimgbin:", err)
	os.Exit(1)
}
