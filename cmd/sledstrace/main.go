// Command sledstrace generates, inspects, and validates I/O trace files
// in the sledtrace/1 text format (internal/trace).
//
// Usage:
//
//	sledstrace gen -class olap -seed 7 -o scan.sledtrace   # generate
//	sledstrace inspect scan.sledtrace                      # summarize
//	sledstrace validate scan.sledtrace                     # check, exit 1 on bad
//
// gen writes to stdout when -o is omitted; inspect and validate read
// stdin when the path is "-" or omitted. Generation is a pure function of
// the flags: the same invocation produces byte-identical output anywhere.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sleds/internal/simclock"
	"sleds/internal/trace"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sledstrace <command> [flags] [file]

commands:
  gen       generate a trace (writes to -o or stdout)
  inspect   print a summary of a trace file ("-" or no file = stdin)
  validate  check a trace file; exit 0 if valid, 1 if not
  classes   list the workload classes, one per line, with descriptions

run "sledstrace <command> -h" for the command's flags
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "validate":
		cmdValidate(os.Args[2:])
	case "classes":
		for _, c := range trace.Classes() {
			fmt.Printf("%-8s %s\n", c, trace.ClassDoc(c))
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sledstrace: unknown command %q\n", os.Args[1])
		usage()
	}
}

// fail prints the error and exits with the given code.
func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sledstrace: "+format+"\n", args...)
	os.Exit(code)
}

// cliSeed passes the -seed flag through as this invocation's
// reproducibility root: the value is recorded in the trace header, so
// any generated trace can be regenerated from its own metadata.
//
//sledlint:seed
func cliSeed(seed uint64) uint64 { return seed }

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	class := fs.String("class", "oltp", "workload class (see: sledstrace classes)")
	seed := fs.Uint64("seed", 1, "generator seed")
	streams := fs.Int("streams", 0, "concurrent streams (0 = class default)")
	records := fs.Int("records", 0, "records per stream (0 = class default)")
	fileSize := fs.Int64("file-size", 0, "bytes per file (0 = default)")
	recLen := fs.Int64("rec-len", 0, "bytes per op (0 = default)")
	pageSize := fs.Int64("page-size", 0, "offset alignment (0 = default)")
	interarrival := fs.Duration("interarrival", 0, "mean interarrival within a stream (0 = default)")
	writeFrac := fs.Float64("write-frac", -1, "write fraction for class mixed (-1 = default)")
	out := fs.String("o", "", "output file (empty = stdout)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fail(2, "gen takes no positional arguments, got %q", fs.Args())
	}

	p := trace.DefaultParams(cliSeed(*seed))
	if *streams > 0 {
		p.Streams = *streams
	}
	if *records > 0 {
		p.Records = *records
	}
	if *fileSize > 0 {
		p.FileSize = *fileSize
	}
	if *recLen > 0 {
		p.RecLen = *recLen
	}
	if *pageSize > 0 {
		p.PageSize = *pageSize
	}
	if *interarrival > 0 {
		p.Interarrival = simclock.Duration(*interarrival)
	}
	if *writeFrac >= 0 {
		p.WriteFrac = *writeFrac
	}
	tr, err := trace.Generate(*class, p)
	if err != nil {
		// Unknown classes are a usage error (exit 2, like an unknown -exp
		// id in sledsbench); anything else is a generation failure.
		code := 1
		if trace.ClassDoc(*class) == "" {
			code = 2
		}
		fail(code, "%v", err)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(1, "%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Encode(w, tr); err != nil {
		fail(1, "%v", err)
	}
}

// open returns the input reader for inspect/validate: the named file, or
// stdin for "-" or no argument.
func open(fs *flag.FlagSet) io.ReadCloser {
	switch fs.NArg() {
	case 0:
		return os.Stdin
	case 1:
		if fs.Arg(0) == "-" {
			return os.Stdin
		}
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fail(1, "%v", err)
		}
		return f
	default:
		fail(2, "want one trace file, got %q", fs.Args())
		panic("unreachable")
	}
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	fs.Parse(args)
	r := open(fs)
	defer r.Close()
	tr, err := trace.Decode(r)
	if err != nil {
		fail(1, "%v", err)
	}
	fmt.Printf("format: sledtrace/%d\n", trace.Version)
	fmt.Printf("files: %d\n", len(tr.Files))
	var total int64
	for i, f := range tr.Files {
		fmt.Printf("  f%d: %d bytes\n", i, f.Size)
		total += f.Size
	}
	fmt.Printf("total file bytes: %d\n", total)
	fmt.Printf("records: %d\n", len(tr.Records))
	var reads, writes int
	var bytes int64
	for _, rec := range tr.Records {
		if rec.Op == trace.OpWrite {
			writes++
		} else {
			reads++
		}
		bytes += rec.Len
	}
	fmt.Printf("  reads: %d, writes: %d, op bytes: %d\n", reads, writes, bytes)
	first, last := tr.Span()
	fmt.Printf("span: %v .. %v\n", time.Duration(first), time.Duration(last))
	idx := tr.Index()
	fmt.Printf("streams: %d\n", len(idx.Streams()))
	for i, id := range idx.Streams() {
		fmt.Printf("  s%d: %d records\n", id, len(idx.Records(i)))
	}
}

func cmdValidate(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	quiet := fs.Bool("q", false, "print nothing; report by exit status only")
	fs.Parse(args)
	r := open(fs)
	defer r.Close()
	tr, err := trace.Decode(r)
	if err != nil {
		if *quiet {
			os.Exit(1)
		}
		fail(1, "invalid: %v", err)
	}
	if !*quiet {
		fmt.Printf("valid: %d files, %d records, %d streams\n",
			len(tr.Files), len(tr.Records), len(tr.Streams()))
	}
}
