// Command sledsbench regenerates the paper's evaluation: every table
// (2, 3, 4) and figure (3, 7-15) plus the extension experiments (find
// -latency pruning, the gmc panel, and the HSM prediction).
//
// Usage:
//
//	sledsbench                  # everything, paper-scale configuration
//	sledsbench -scale quick     # ~16x smaller, same shapes, seconds to run
//	sledsbench -exp f7,f8       # selected experiments only
//	sledsbench -runs 6          # override runs per point
//	sledsbench -workers 8       # parallel experiment points (0 = GOMAXPROCS)
//
// Output is the text rendering of each table/figure; EXPERIMENTS.md is
// produced from this output. Tables and figures go to stdout and are
// byte-identical at any -workers value; per-experiment host-time
// reporting goes to stderr so stdout stays diffable across runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"sleds/internal/experiments"
	"sleds/internal/faults"
	"sleds/internal/trace"
)

// startProfiles starts the host-side pprof collectors selected by the
// -cpuprofile/-memprofile flags; the returned stop function (idempotent)
// finishes them. Profiles measure the regeneration's own host CPU and
// heap — wall-clock diagnostics, which cmd/ is allowed to touch — and all
// notes go to stderr so stdout stays diffable.
func startProfiles(cpu, mem string) func() {
	cpuStarted := false
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sledsbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sledsbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		cpuStarted = true
		fmt.Fprintf(os.Stderr, "(host CPU profile -> %s)\n", cpu)
	}
	return func() {
		if cpuStarted {
			pprof.StopCPUProfile()
			cpuStarted = false
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sledsbench: -memprofile: %v\n", err)
				mem = ""
				return
			}
			runtime.GC() // materialise the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sledsbench: -memprofile: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "(host heap profile -> %s)\n", mem)
			}
			f.Close()
			mem = ""
		}
	}
}

// knownExps lists every selectable experiment id, plus the "all" and
// "ablations" group selectors. Unknown ids are an error (exit 2), not a
// silently empty run.
var knownExps = []string{
	"all", "ablations",
	"t2", "t3", "t4", "f3",
	"f7", "f8", "f9", "f10", "f11", "f12", "f13", "f14", "f15", "f15x16",
	"efind", "egmc", "ehsm", "eremote", "ehints", "etreegrep", "eaccuracy",
	"econtend", "eloadsled", "efaults", "escale", "etrace", "efleet",
	"ablation-policy", "ablation-pickorder", "ablation-refresh",
	"ablation-readahead", "ablation-mmap", "ablation-zones",
}

func main() {
	scale := flag.String("scale", "paper", "configuration scale: paper | quick")
	exps := flag.String("exp", "all", "comma-separated experiment ids: t2,t3,t4,f3,f7,f8,f9,f10,f11,f12,f13,f14,f15,f15x16,efind,egmc,ehsm,eremote,ehints,etreegrep,eaccuracy,econtend,eloadsled,efaults,escale,ablations")
	runs := flag.Int("runs", 0, "override measured runs per point (0 = configuration default)")
	workers := flag.Int("workers", 0, "experiment points run in parallel (0 = GOMAXPROCS); output is identical at any value")
	faultsProfile := flag.String("faults", "off", "deterministic fault-injection profile applied to every device of every machine: off | light | heavy")
	classesFlag := flag.String("classes", "", "comma-separated workload classes for the etrace experiment (empty = all): "+strings.Join(trace.Classes(), ","))
	fleetFlag := flag.Int("fleet", 0, "replica count for the efleet experiment (0 = default 4)")
	sledMemo := flag.String("sledmemo", "on", "sleds-table skeleton memo on every booted machine: on | off | <files> (a positive LRU capacity); output is byte-identical at any setting")
	csvDir := flag.String("csv", "", "also write each figure as <dir>/<id>.csv for external plotting")
	list := flag.Bool("list", false, "print the valid experiment ids, one per line, and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a host-side CPU profile of the regeneration to this file (pprof)")
	memprofile := flag.String("memprofile", "", "write a host-side heap profile to this file at exit (pprof)")
	flag.Parse()

	if *list {
		valid := append([]string(nil), knownExps...)
		sort.Strings(valid)
		for _, id := range valid {
			fmt.Println(id)
		}
		// -faults profiles and -classes workload classes, prefixed so
		// scripts can tell them from experiment ids.
		for _, p := range faults.Profiles() {
			fmt.Println("faults:" + p)
		}
		for _, c := range trace.Classes() {
			fmt.Println("class:" + c)
		}
		// -sledmemo forms, same prefix convention.
		fmt.Println("sledmemo:on")
		fmt.Println("sledmemo:off")
		fmt.Println("sledmemo:<files>")
		return
	}

	// exit flushes the profiles before terminating, so a failed run still
	// yields usable diagnostics; os.Exit would skip them.
	stopProfiles := startProfiles(*cpuprofile, *memprofile)
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	var cfg experiments.Config
	switch *scale {
	case "paper":
		cfg = experiments.PaperConfig()
	case "quick":
		cfg = experiments.QuickConfig()
	default:
		fmt.Fprintf(os.Stderr, "sledsbench: unknown scale %q\n", *scale)
		exit(2)
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	cfg.Workers = *workers
	if _, ok := faults.ProfileConfig(*faultsProfile, 0); !ok {
		fmt.Fprintf(os.Stderr, "sledsbench: unknown fault profile %q (valid: %s)\n",
			*faultsProfile, strings.Join(faults.Profiles(), ", "))
		exit(2)
	}
	if *faultsProfile != "off" {
		cfg.FaultProfile = *faultsProfile
	}
	if _, err := experiments.ParseSLEDMemo(*sledMemo); err != nil {
		fmt.Fprintf(os.Stderr, "sledsbench: -sledmemo %q: valid values are on, off, or a positive file capacity\n", *sledMemo)
		exit(2)
	}
	cfg.SLEDMemo = *sledMemo
	// -classes is validated up front like -exp and -faults: an unknown
	// workload class is exit 2 with the valid names, not an empty run.
	knownClasses := map[string]bool{}
	for _, c := range trace.Classes() {
		knownClasses[c] = true
	}
	var traceClasses []string
	for _, c := range strings.Split(*classesFlag, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		if !knownClasses[c] {
			fmt.Fprintf(os.Stderr, "sledsbench: unknown workload class %q (valid: %s)\n",
				c, strings.Join(trace.Classes(), ", "))
			exit(2)
		}
		traceClasses = append(traceClasses, c)
	}

	known := map[string]bool{}
	for _, id := range knownExps {
		known[id] = true
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		id := strings.TrimSpace(e)
		if id == "" {
			continue
		}
		if !known[id] {
			valid := append([]string(nil), knownExps...)
			sort.Strings(valid)
			fmt.Fprintf(os.Stderr, "sledsbench: unknown experiment id %q (valid: %s)\n",
				id, strings.Join(valid, ", "))
			exit(2)
		}
		want[id] = true
	}
	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "sledsbench: no experiments selected")
		exit(2)
	}
	all := want["all"]
	selected := func(id string) bool { return all || want[id] }

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "sledsbench: creating %s: %v\n", *csvDir, err)
			exit(1)
		}
	}
	writeCSV := func(f experiments.Figure) {
		if *csvDir == "" {
			return
		}
		name := strings.Map(func(r rune) rune {
			switch r {
			case '(', ')':
				return -1
			}
			return r
		}, f.ID)
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sledsbench: writing %s: %v\n", path, err)
			exit(1)
		}
	}

	fmt.Printf("# SLEDs evaluation, scale=%s (cache %.3g MB, sizes %.3g..%.3g MB, %d runs/point)\n\n",
		*scale, float64(cfg.CacheBytes())/float64(experiments.MB),
		float64(cfg.Sizes[0])/float64(experiments.MB),
		float64(cfg.Sizes[len(cfg.Sizes)-1])/float64(experiments.MB), cfg.Runs)

	// hostTime reports wall-clock per experiment on stderr: diagnostic,
	// nondeterministic, and deliberately kept out of the diffable stdout.
	hostTime := func(id string, start time.Time) {
		fmt.Fprintf(os.Stderr, "(%s regenerated in %.1fs host time)\n", id, time.Since(start).Seconds())
	}

	run := func(id string, fn func() (string, error)) {
		if !selected(id) {
			return
		}
		start := time.Now()
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sledsbench: %s: %v\n", id, err)
			exit(1)
		}
		fmt.Println(out)
		hostTime(id, start)
	}

	run("t2", func() (string, error) {
		t, err := experiments.Table2(cfg)
		return t.Render(), err
	})
	run("t3", func() (string, error) {
		t, err := experiments.Table3(cfg)
		return t.Render(), err
	})
	run("t4", func() (string, error) {
		t, err := experiments.Table4()
		return t.Render(), err
	})
	run("f3", func() (string, error) { return experiments.Fig3Trace(), nil })

	// Figures 7 and 8 share one sweep; same for 11 and 12.
	if selected("f7") || selected("f8") {
		start := time.Now()
		f7, f8, err := experiments.Fig7And8(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sledsbench: f7/f8: %v\n", err)
			exit(1)
		}
		if selected("f7") {
			writeCSV(f7)
			fmt.Println(f7.Render())
		}
		if selected("f8") {
			writeCSV(f8)
			fmt.Println(f8.Render())
		}
		hostTime("f7+f8", start)
	}
	run("f9", func() (string, error) {
		f, err := experiments.Fig9(cfg)
		writeCSV(f)
		return f.Render(), err
	})
	run("f10", func() (string, error) {
		f, err := experiments.Fig10(cfg)
		writeCSV(f)
		return f.Render(), err
	})
	if selected("f11") || selected("f12") {
		start := time.Now()
		f11, f12, err := experiments.Fig11And12(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sledsbench: f11/f12: %v\n", err)
			exit(1)
		}
		if selected("f11") {
			writeCSV(f11)
			fmt.Println(f11.Render())
		}
		if selected("f12") {
			writeCSV(f12)
			fmt.Println(f12.Render())
		}
		hostTime("f11+f12", start)
	}
	run("f13", func() (string, error) {
		f, err := experiments.Fig13(cfg)
		writeCSV(f)
		return f.Render(), err
	})
	run("f14", func() (string, error) {
		f, err := experiments.Fig14(cfg)
		writeCSV(f)
		return f.Render(), err
	})
	run("f15", func() (string, error) {
		f, err := experiments.Fig15Factor(cfg, 4)
		writeCSV(f)
		return f.Render(), err
	})
	run("f15x16", func() (string, error) {
		f, err := experiments.Fig15Factor(cfg, 16)
		writeCSV(f)
		return f.Render(), err
	})
	run("efind", func() (string, error) {
		r, err := experiments.EFind(cfg)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "== efind: find -latency pruning (threshold %s) ==\n", r.Threshold)
		b.WriteString("cheap (worth reading now):\n")
		for _, f := range r.Cheap {
			fmt.Fprintf(&b, "  %-28s %10.4g s\n", f.Path, f.Seconds)
		}
		b.WriteString("expensive (pruned):\n")
		for _, f := range r.Expensive {
			fmt.Fprintf(&b, "  %-28s %10.4g s\n", f.Path, f.Seconds)
		}
		return b.String(), nil
	})
	run("egmc", func() (string, error) {
		r, err := experiments.EGmc(cfg)
		if err != nil {
			return "", err
		}
		return "== egmc: gmc file-properties SLEDs panel (half-cached file) ==\n" + r.Render(), nil
	})
	run("ehsm", func() (string, error) {
		r, err := experiments.EHSM(cfg)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("== ehsm: grep -q on HSM (staged tail) ==\nwithout SLEDs: %8.4g s\nwith SLEDs:    %8.4g s\nspeedup:       %8.4g x\n",
			r.WithoutSeconds, r.WithSeconds, r.Speedup), nil
	})
	run("eremote", func() (string, error) {
		r, err := experiments.ERemote(cfg)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("== eremote: grep -q on a remote file, server-cached tail ==\nwithout SLEDs: %8.4g s\nwith SLEDs:    %8.4g s\nspeedup:       %8.4g x\n",
			r.WithoutSeconds, r.WithSeconds, r.Speedup), nil
	})
	run("ehints", func() (string, error) {
		f, err := experiments.EHints(cfg)
		writeCSV(f)
		return f.Render(), err
	})
	run("etreegrep", func() (string, error) {
		f, err := experiments.ETreeGrep(cfg)
		writeCSV(f)
		return f.Render(), err
	})
	run("eaccuracy", func() (string, error) {
		f, err := experiments.EAccuracy(cfg)
		writeCSV(f)
		return f.Render(), err
	})
	run("econtend", func() (string, error) {
		f, err := experiments.EContention(cfg)
		writeCSV(f)
		return f.Render(), err
	})
	run("eloadsled", func() (string, error) {
		f, err := experiments.ELoadSLED(cfg)
		writeCSV(f)
		return f.Render(), err
	})
	run("efaults", func() (string, error) {
		r, err := experiments.EFaults(cfg)
		if err != nil {
			return "", err
		}
		writeCSV(r.Figure)
		return r.Render(), nil
	})
	// escale measures the engine rather than the paper's claims, so it is
	// deliberately not part of "all" (the committed golden outputs never
	// include it); select it explicitly, as CI's scale-smoke target does.
	if want["escale"] {
		start := time.Now()
		f, err := experiments.EScale(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sledsbench: escale: %v\n", err)
			exit(1)
		}
		writeCSV(f)
		fmt.Println(f.Render())
		hostTime("escale", start)
	}
	// etrace replays the internal/trace workload zoo over the queued-device
	// engine. Like escale it measures the extension layer rather than the
	// paper's claims, so it stays outside "all" (the committed goldens never
	// include it); select it explicitly, as CI's trace-smoke target does.
	if want["etrace"] {
		start := time.Now()
		r, err := experiments.ETrace(cfg, traceClasses...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sledsbench: etrace: %v\n", err)
			exit(1)
		}
		fmt.Println(r.Render())
		hostTime("etrace", start)
	}
	// efleet drives the fleet tier (internal/fleet): SLED-guided replica
	// selection with hedging, failover, and degradation, against blind
	// round-robin, under three fleet scenarios. Like escale and etrace it
	// measures the extension layer rather than the paper's claims, so it
	// stays outside "all" (the committed goldens never include it); select
	// it explicitly, as CI's fleet-smoke target does.
	if want["efleet"] {
		start := time.Now()
		r, err := experiments.EFleet(cfg, *fleetFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sledsbench: efleet: %v\n", err)
			exit(1)
		}
		fmt.Println(r.Render())
		hostTime("efleet", start)
	}
	for _, abl := range []struct {
		id string
		fn func(experiments.Config) (experiments.Figure, error)
	}{
		{"ablation-policy", experiments.AblationPolicy},
		{"ablation-pickorder", experiments.AblationPickOrder},
		{"ablation-refresh", experiments.AblationRefresh},
		{"ablation-readahead", experiments.AblationReadahead},
		{"ablation-mmap", experiments.AblationMmap},
		{"ablation-zones", experiments.AblationZones},
	} {
		if !selected(abl.id) && !want["ablations"] {
			continue
		}
		fn := abl.fn
		start := time.Now()
		f, err := fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sledsbench: %s: %v\n", abl.id, err)
			exit(1)
		}
		writeCSV(f)
		fmt.Println(f.Render())
		hostTime(abl.id, start)
	}
	stopProfiles()
}
