// Command slstat prints the gmc file-properties SLEDs panel for a staged
// scenario: a file whose tail has just been read, so the panel shows the
// cheap cached section, the expensive device section, and the estimated
// total delivery time — the report-latency use of SLEDs.
//
//	slstat -fs nfs -size 24 -warm 0.5 (panel for a half-warmed file)
package main

import (
	"flag"
	"fmt"
	"os"

	"sleds"
	"sleds/internal/apps/gmcapp"
)

func main() {
	fsName := flag.String("fs", "ext2", "file system: ext2 | cdrom | nfs | tape")
	sizeMB := flag.Float64("size", 24, "file size in MB")
	warm := flag.Float64("warm", 0.5, "fraction of the file tail to warm into cache")
	flag.Parse()

	sys, err := sleds.NewSystem(sleds.Config{CacheBytes: 44 << 20})
	if err != nil {
		fatal(err)
	}
	dev := sleds.OnDisk
	switch *fsName {
	case "ext2":
	case "cdrom":
		dev = sleds.OnCDROM
	case "nfs":
		dev = sleds.OnNFS
	case "tape":
		dev = sleds.OnTape
	default:
		fatal(fmt.Errorf("unknown file system %q", *fsName))
	}
	size := int64(*sizeMB * (1 << 20))
	if err := sys.CreateTextFile("/data/testfile", dev, 42, size); err != nil {
		fatal(err)
	}
	if *warm > 0 {
		f, _ := sys.Open("/data/testfile")
		n := int64(*warm * float64(size))
		buf := make([]byte, n)
		f.ReadAt(buf, size-n)
		f.Close()
	}
	r, err := gmcapp.Properties(sys.Env(true), "/data/testfile")
	if err != nil {
		fatal(err)
	}
	fmt.Print(r.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slstat:", err)
	os.Exit(1)
}
