// Command sledlint is the repository's determinism linter: a
// multichecker enforcing the simulation's virtual-time and
// reproducibility invariants as compile-time rules.
//
// Usage:
//
//	sledlint [-json] [packages...]
//
// With no packages it checks ./... . Exit status is 0 when the tree
// is clean, 1 when any rule fired, 2 on load or usage errors. The
// -json flag emits an array of {file, line, col, analyzer, message}
// objects for tooling; the default output is one finding per line in
// file:line:col: message (analyzer) form.
//
// Rules (each honors //sledlint:allow <rule> -- <reason>):
//
//	wallclock  no time.Now/Sleep/timers outside cmd/
//	rngsource  no global math/rand, no literal seeds
//	mapiter    no map-iteration order reaching output
//	panicpath  no panic in device/fault-path packages
//	simtime    no raw integer literals as time.Duration
package main

import (
	"flag"
	"fmt"
	"os"

	"sleds/internal/lint/analysis"
	"sleds/internal/lint/driver"
	"sleds/internal/lint/mapiter"
	"sleds/internal/lint/panicpath"
	"sleds/internal/lint/rngsource"
	"sleds/internal/lint/simtime"
	"sleds/internal/lint/wallclock"
)

// Analyzers is the suite, in reporting-name order.
var Analyzers = []*analysis.Analyzer{
	mapiter.Analyzer,
	panicpath.Analyzer,
	rngsource.Analyzer,
	simtime.Analyzer,
	wallclock.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON diagnostics")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sledlint [-json] [packages...]\n\nrules:\n")
		for _, a := range Analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(driver.Run(Analyzers, patterns, os.Stdout, driver.Options{JSON: *jsonOut}))
}
