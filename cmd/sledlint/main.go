// Command sledlint is the repository's determinism linter: a
// multichecker enforcing the simulation's virtual-time,
// reproducibility, error-path, and zero-allocation invariants as
// compile-time rules.
//
// Usage:
//
//	sledlint [-json|-sarif] [-tests] [-baseline file [-write-baseline]] [-debt] [packages...]
//
// With no packages it checks ./... . Exit status is 0 when the tree
// is clean, 1 when any rule fired, 2 on load or usage errors. The
// -json flag emits an array of {file, line, col, analyzer, message}
// objects for tooling; -sarif emits a SARIF 2.1.0 log for code
// scanning UIs; the default output is one finding per line in
// file:line:col: message (analyzer) form.
//
// -tests widens the load to _test.go files for the analyzers that opt
// in (wallclock, rngsource, seedflow) — test helpers seed RNGs and
// read clocks too. -baseline subtracts a committed inventory of
// accepted findings so CI gates only on regressions; -write-baseline
// rewrites it. -debt prints every //sledlint:allow directive with its
// reason and exits clean.
//
// Syntactic rules (each honors //sledlint:allow <rule> -- <reason>):
//
//	wallclock  no time.Now/Sleep/timers outside cmd/
//	rngsource  no global math/rand, no literal seeds
//	mapiter    no map-iteration order reaching output
//	panicpath  no panic in device/fault-path packages
//	simtime    no raw integer literals as time.Duration
//
// Dataflow rules (inter-procedural, driven by cross-package facts):
//
//	seedflow   RNG seeds must derive from experiments.PointSeed, a
//	           constant, or a //sledlint:seed source
//	errflow    errors from ReadErr/WriteErr and transitively fallible
//	           helpers must be returned, checked, or discarded with a
//	           reasoned directive
//	hotalloc   //sledlint:hotpath functions and their callees must be
//	           free of allocation sites
package main

import (
	"flag"
	"fmt"
	"os"

	"sleds/internal/lint/analysis"
	"sleds/internal/lint/driver"
	"sleds/internal/lint/errflow"
	"sleds/internal/lint/hotalloc"
	"sleds/internal/lint/mapiter"
	"sleds/internal/lint/panicpath"
	"sleds/internal/lint/rngsource"
	"sleds/internal/lint/seedflow"
	"sleds/internal/lint/simtime"
	"sleds/internal/lint/wallclock"
)

// Analyzers is the suite, in reporting-name order.
var Analyzers = []*analysis.Analyzer{
	errflow.Analyzer,
	hotalloc.Analyzer,
	mapiter.Analyzer,
	panicpath.Analyzer,
	rngsource.Analyzer,
	seedflow.Analyzer,
	simtime.Analyzer,
	wallclock.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON diagnostics")
	sarifOut := flag.Bool("sarif", false, "emit a SARIF 2.1.0 log")
	tests := flag.Bool("tests", false, "also check _test.go files (analyzers opt in)")
	baseline := flag.String("baseline", "", "subtract accepted findings from this JSON baseline file")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the -baseline file from current findings and exit clean")
	debt := flag.Bool("debt", false, "report every //sledlint:allow directive and exit clean")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sledlint [-json|-sarif] [-tests] [-baseline file [-write-baseline]] [-debt] [packages...]\n\nrules:\n")
		for _, a := range Analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(driver.Run(Analyzers, patterns, os.Stdout, driver.Options{
		JSON:          *jsonOut,
		SARIF:         *sarifOut,
		Tests:         *tests,
		Baseline:      *baseline,
		WriteBaseline: *writeBaseline,
		Debt:          *debt,
	}))
}
