// Command slfind demonstrates the SLEDs-aware find: it builds a directory
// tree spanning disk, NFS and the tape library, warms one file, and
// applies the paper's -latency predicate syntax to select files by
// estimated retrieval time — the prune-I/O use of SLEDs.
//
//	slfind -latency +1       # files needing more than one second
//	slfind -latency -m50     # files under 50 ms (cached data)
//	slfind -name '*.dat'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sleds"
	"sleds/internal/apps/findapp"
	"sleds/internal/apps/grepapp"
	"sleds/internal/core"
	"sleds/internal/sledlib"
)

func main() {
	latency := flag.String("latency", "", "latency predicate: [+-]?[mMuU]?n (paper syntax)")
	name := flag.String("name", "", "glob on the base name")
	execGrep := flag.String("exec-grep", "", "run the SLEDs grep for this pattern over each selected file, cheapest file first (the paper's find -exec grep anecdote)")
	flag.Parse()

	sys, err := sleds.NewSystem(sleds.Config{CacheBytes: 8 << 20})
	if err != nil {
		fatal(err)
	}
	for _, d := range []string{"/data/src", "/data/archive"} {
		if err := sys.MkdirAll(d); err != nil {
			fatal(err)
		}
	}
	files := []struct {
		path string
		dev  sleds.StandardDevice
		mb   int64
	}{
		{"/data/src/hot.c", sleds.OnDisk, 2},
		{"/data/src/cold.c", sleds.OnDisk, 2},
		{"/data/src/remote.c", sleds.OnNFS, 2},
		{"/data/archive/run1.dat", sleds.OnTape, 16},
		{"/data/archive/run2.dat", sleds.OnTape, 16},
	}
	for i, f := range files {
		if err := sys.CreateTextFile(f.path, f.dev, uint64(i+1), f.mb<<20); err != nil {
			fatal(err)
		}
	}
	// Warm hot.c so its estimate reflects the cache.
	f, _ := sys.Open("/data/src/hot.c")
	io.Copy(io.Discard, f)
	f.Close()

	opts := findapp.Options{NamePattern: *name, Plan: core.PlanLinear, FilesOnly: true}
	if *latency != "" {
		pred, err := findapp.ParseLatencyPredicate(*latency)
		if err != nil {
			fatal(err)
		}
		opts.Latency = &pred
	}
	results, err := findapp.Run(sys.Env(true), "/data", opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("find /data"+flagSummary(*name, *latency)+": %d file(s)\n", len(results))
	for _, r := range results {
		if opts.Latency != nil {
			fmt.Printf("  %-28s estimated %10.4g s\n", r.Path, r.Seconds)
		} else {
			fmt.Printf("  %s\n", r.Path)
		}
	}
	if *execGrep != "" {
		// The selected files are visited cheapest first (file-set order),
		// each searched with the SLEDs grep — the combination §5.2
		// motivates with "the SLEDs-aware find allows him to search cache
		// first, then higher latency data only as needed."
		paths := make([]string, 0, len(results))
		for _, r := range results {
			paths = append(paths, r.Path)
		}
		ordered, est := sledlib.FileSetOrder(sys.Kernel(), sys.Table(), paths, core.PlanBest)
		fmt.Printf("\nexec grep %q, cheapest first:\n", *execGrep)
		for i, p := range ordered {
			matches, err := grepapp.Run(sys.Env(true), p, *execGrep, grepapp.Options{})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-28s (est %8.4g s) %d match(es)\n", p, est[i], len(matches))
		}
	}
}

func flagSummary(name, latency string) string {
	s := ""
	if name != "" {
		s += fmt.Sprintf(" -name %s", name)
	}
	if latency != "" {
		s += fmt.Sprintf(" -latency %s", latency)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slfind:", err)
	os.Exit(1)
}
