// Command slwc is the SLEDs-aware wc demo: it boots a simulated machine,
// creates a text file on the chosen file system, warms the cache with one
// pass, and then counts the file with and without SLEDs, reporting
// counts, virtual elapsed time, and hard page faults.
//
//	slwc -fs nfs -size 96 -cache 44        # paper-scale point
//	slwc -sleds=false                      # only the conventional run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sleds"
	"sleds/internal/apps/wcapp"
	"sleds/internal/simclock"
)

func main() {
	fsName := flag.String("fs", "ext2", "file system: ext2 | cdrom | nfs | tape")
	sizeMB := flag.Float64("size", 96, "file size in MB")
	cacheMB := flag.Float64("cache", 44, "file cache size in MB")
	seed := flag.Uint64("seed", 42, "content seed")
	both := flag.Bool("sleds", true, "also run the SLEDs-aware pass")
	flag.Parse()

	sys, err := sleds.NewSystem(sleds.Config{CacheBytes: int64(*cacheMB * (1 << 20))})
	if err != nil {
		fatal(err)
	}
	dev, err := deviceFor(*fsName)
	if err != nil {
		fatal(err)
	}
	size := int64(*sizeMB * (1 << 20))
	if err := sys.CreateTextFile("/data/testfile", dev, cliSeed(*seed), size); err != nil {
		fatal(err)
	}

	// Warm the cache with one linear pass, as the experiments do.
	f, err := sys.Open("/data/testfile")
	if err != nil {
		fatal(err)
	}
	io.Copy(io.Discard, f)
	f.Close()

	fmt.Printf("wc on %s, %.4g MB file, %.4g MB cache, warm\n\n", *fsName, *sizeMB, *cacheMB)
	runOnce := func(useSLEDs bool) {
		sys.ResetStats()
		start := sys.Now()
		res, err := wcapp.Run(sys.Env(useSLEDs), "/data/testfile")
		if err != nil {
			fatal(err)
		}
		elapsed := sys.Now() - start
		mode := "without SLEDs"
		if useSLEDs {
			mode = "with SLEDs   "
		}
		fmt.Printf("%s  %9d lines %9d words %10d bytes   %8.3fs elapsed  %7d faults\n",
			mode, res.Lines, res.Words, res.Bytes,
			float64(elapsed)/float64(simclock.Second), sys.Stats().Faults)
	}
	runOnce(false)
	if *both {
		// Re-warm so the second mode sees the same starting state.
		f, _ := sys.Open("/data/testfile")
		io.Copy(io.Discard, f)
		f.Close()
		runOnce(true)
	}
}

func deviceFor(name string) (sleds.StandardDevice, error) {
	switch name {
	case "ext2":
		return sleds.OnDisk, nil
	case "cdrom":
		return sleds.OnCDROM, nil
	case "nfs":
		return sleds.OnNFS, nil
	case "tape":
		return sleds.OnTape, nil
	}
	return 0, fmt.Errorf("unknown file system %q", name)
}

// cliSeed passes the -seed flag through as this invocation's
// reproducibility root: rerunning with the same flag regenerates the
// same file content.
//
//sledlint:seed
func cliSeed(seed uint64) uint64 { return seed }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slwc:", err)
	os.Exit(1)
}
