// Command fimhisto runs the ported LHEASOFT fimhisto on a synthetic FITS
// image: it copies the image, appends a histogram of its pixel values,
// and reports elapsed virtual time and page faults with and without
// SLEDs — the paper's §5.3 experiment at one point.
//
//	fimhisto -width 1024 -height 24576 -bins 64   # ~48 MB image
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sleds"
	"sleds/internal/apps/fitsapp"
	"sleds/internal/simclock"
)

func main() {
	width := flag.Int("width", 1024, "image width in pixels")
	height := flag.Int("height", 24576, "image height in pixels")
	bins := flag.Int("bins", 64, "histogram bins")
	cacheMB := flag.Float64("cache", 44, "file cache size in MB")
	flag.Parse()

	sys, err := sleds.NewSystem(sleds.Config{
		CacheBytes:  int64(*cacheMB * (1 << 20)),
		LHEAProfile: true,
	})
	if err != nil {
		fatal(err)
	}
	if err := sys.CreateFITSImage("/data/img.fits", sleds.OnDisk, 7, *width, *height); err != nil {
		fatal(err)
	}
	n, _ := sys.Stat("/data/img.fits")
	fmt.Printf("fimhisto on %dx%d image (%.4g MB), %d bins, %.4g MB cache\n\n",
		*width, *height, float64(n.Size())/(1<<20), *bins, *cacheMB)

	for i, useSLEDs := range []bool{false, true} {
		// Warm pass.
		f, _ := sys.Open("/data/img.fits")
		io.Copy(io.Discard, f)
		f.Close()

		out := fmt.Sprintf("/data/out%d.fits", i)
		sys.ResetStats()
		start := sys.Now()
		h, err := fitsapp.Fimhisto(sys.Env(useSLEDs), "/data/img.fits", out, *bins, sys.Device(sleds.OnDisk))
		if err != nil {
			fatal(err)
		}
		elapsed := float64(sys.Now()-start) / float64(simclock.Second)
		mode := "without SLEDs"
		if useSLEDs {
			mode = "with SLEDs   "
		}
		fmt.Printf("%s  %8.3fs elapsed  %7d faults   (range [%d,%d], %d pixels binned)\n",
			mode, elapsed, sys.Stats().Faults, h.Min, h.Max, h.Total())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fimhisto:", err)
	os.Exit(1)
}
