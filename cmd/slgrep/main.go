// Command slgrep is the SLEDs-aware grep demo: it plants a needle at a
// chosen position in a simulated file, warms the cache, and searches with
// and without SLEDs — optionally in -q (first match) mode, the paper's
// ideal case, where a cached match means no physical I/O at all.
//
//	slgrep -fs ext2 -size 96 -at 0.8 -q
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sleds"
	"sleds/internal/apps/grepapp"
	"sleds/internal/simclock"
)

func main() {
	fsName := flag.String("fs", "ext2", "file system: ext2 | cdrom | nfs | tape")
	sizeMB := flag.Float64("size", 96, "file size in MB")
	cacheMB := flag.Float64("cache", 44, "file cache size in MB")
	at := flag.Float64("at", 0.8, "match position as a fraction of the file")
	firstOnly := flag.Bool("q", false, "stop at the first match (grep -q)")
	lineNumbers := flag.Bool("n", false, "report line numbers (grep -n)")
	seed := flag.Uint64("seed", 42, "content seed")
	flag.Parse()

	sys, err := sleds.NewSystem(sleds.Config{CacheBytes: int64(*cacheMB * (1 << 20))})
	if err != nil {
		fatal(err)
	}
	dev := sleds.OnDisk
	switch *fsName {
	case "ext2":
	case "cdrom":
		dev = sleds.OnCDROM
	case "nfs":
		dev = sleds.OnNFS
	case "tape":
		dev = sleds.OnTape
	default:
		fatal(fmt.Errorf("unknown file system %q", *fsName))
	}
	size := int64(*sizeMB * (1 << 20))
	if err := sys.CreateTextFileWithMatches("/data/testfile", dev, cliSeed(*seed), size,
		"xyzzy", int64(*at*float64(size))); err != nil {
		fatal(err)
	}

	f, _ := sys.Open("/data/testfile")
	io.Copy(io.Discard, f)
	f.Close()

	fmt.Printf("grep xyzzy on %s, %.4g MB file, match at %.0f%%, warm cache, q=%v\n\n",
		*fsName, *sizeMB, *at*100, *firstOnly)
	for _, useSLEDs := range []bool{false, true} {
		// Re-warm between modes.
		f, _ := sys.Open("/data/testfile")
		io.Copy(io.Discard, f)
		f.Close()

		sys.ResetStats()
		start := sys.Now()
		matches, err := grepapp.Run(sys.Env(useSLEDs), "/data/testfile", "xyzzy",
			grepapp.Options{FirstOnly: *firstOnly, LineNumbers: *lineNumbers})
		if err != nil {
			fatal(err)
		}
		elapsed := float64(sys.Now()-start) / float64(simclock.Second)
		mode := "without SLEDs"
		if useSLEDs {
			mode = "with SLEDs   "
		}
		fmt.Printf("%s  %2d match(es)   %8.3fs elapsed  %7d faults\n",
			mode, len(matches), elapsed, sys.Stats().Faults)
		for _, m := range matches {
			if *lineNumbers {
				fmt.Printf("    %d (offset %d): %q\n", m.LineNo, m.Offset, m.Line)
			} else {
				fmt.Printf("    offset %d: %q\n", m.Offset, m.Line)
			}
		}
	}
}

// cliSeed passes the -seed flag through as this invocation's
// reproducibility root: rerunning with the same flag regenerates the
// same file content.
//
//sledlint:seed
func cliSeed(seed uint64) uint64 { return seed }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slgrep:", err)
	os.Exit(1)
}
