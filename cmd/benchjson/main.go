// Command benchjson converts `go test -bench` output read from stdin into
// a JSON object mapping benchmark name to its measurements: ns/op,
// B/op, allocs/op, and any custom b.ReportMetric figures (speedup-peak
// and friends). The GOMAXPROCS suffix (-8, -16, ...) is stripped from
// names so snapshots diff cleanly across machines; if stripping collides
// (the same benchmark at several -cpu values), later lines win.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson > BENCH.json
//
// json.Marshal sorts object keys, so output is deterministic for a given
// input.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	results := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8  <iters>  <value> <unit> [<value> <unit> ...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count: some other Benchmark-prefixed line
		}
		m := results[name]
		if m == nil {
			m = map[string]float64{}
			results[name] = m
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			m[fields[i+1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
