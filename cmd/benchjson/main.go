// Command benchjson converts `go test -bench` output read from stdin into
// a JSON object mapping benchmark name to its measurements: ns/op,
// B/op, allocs/op, and any custom b.ReportMetric figures (speedup-peak
// and friends). The GOMAXPROCS suffix (-8, -16, ...) is stripped from
// names so snapshots diff cleanly across machines; if stripping collides
// (the same benchmark at several -cpu values), later lines win.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson > BENCH.json
//
// json.Marshal sorts object keys, so output is deterministic for a given
// input.
//
// With -compare, benchjson instead gates the stdin run against a
// committed snapshot and exits 1 on regression:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson -compare BENCH_6.json
//
// Every benchmark present in the baseline must appear on stdin (a
// vanished benchmark is a regression, not a pass), and each gated metric
// may exceed its baseline by at most -tolerance (fractional; 0.25 allows
// +25%). The default gate is allocs/op only: allocation counts are
// deterministic for this codebase's deterministic workloads, while ns/op
// on shared CI runners is noise. Benchmarks on stdin that the baseline
// lacks are reported but never fail — they are new, and land in the
// snapshot at the next regeneration.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	compare := flag.String("compare", "", "baseline BENCH_*.json: gate stdin against it instead of emitting JSON")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional increase per gated metric in -compare mode")
	metrics := flag.String("metrics", "allocs/op", "comma-separated metrics gated in -compare mode")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *compare == "" {
		out, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}

	raw, err := os.ReadFile(*compare)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	var baseline map[string]map[string]float64
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *compare, err)
		os.Exit(1)
	}
	gated := map[string]bool{}
	for _, m := range strings.Split(*metrics, ",") {
		if m = strings.TrimSpace(m); m != "" {
			gated[m] = true
		}
	}
	if compareBench(os.Stdout, baseline, results, gated, *tolerance) {
		os.Exit(1)
	}
}

// parseBench extracts benchmark measurements from `go test -bench` output.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	results := map[string]map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8  <iters>  <value> <unit> [<value> <unit> ...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count: some other Benchmark-prefixed line
		}
		m := results[name]
		if m == nil {
			m = map[string]float64{}
			results[name] = m
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			m[fields[i+1]] = v
		}
	}
	return results, sc.Err()
}

// compareBench reports every baseline benchmark's gated metrics against
// the current run and returns true if anything regressed: a benchmark or
// metric that vanished, or a gated metric above baseline*(1+tolerance).
// A zero baseline tolerates nothing (no scale to apply a fraction to).
func compareBench(w io.Writer, baseline, current map[string]map[string]float64, gated map[string]bool, tolerance float64) bool {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed := false
	fail := func(format string, args ...any) {
		regressed = true
		fmt.Fprintf(w, "REGRESSION: "+format+"\n", args...)
	}
	for _, name := range names {
		cur, ok := current[name]
		if !ok {
			fail("%s: present in baseline, missing from this run", name)
			continue
		}
		baseMetrics := make([]string, 0, len(baseline[name]))
		for metric := range baseline[name] {
			baseMetrics = append(baseMetrics, metric)
		}
		sort.Strings(baseMetrics)
		for _, metric := range baseMetrics {
			if !gated[metric] {
				continue
			}
			base := baseline[name][metric]
			got, ok := cur[metric]
			if !ok {
				fail("%s: metric %s present in baseline, missing from this run", name, metric)
				continue
			}
			limit := base * (1 + tolerance)
			if got > limit {
				fail("%s: %s %.6g exceeds baseline %.6g by more than %.0f%%",
					name, metric, got, base, tolerance*100)
				continue
			}
			fmt.Fprintf(w, "ok: %s %s %.6g (baseline %.6g, limit %.6g)\n", name, metric, got, base, limit)
		}
	}
	curNames := make([]string, 0, len(current))
	for name := range current {
		if _, ok := baseline[name]; !ok {
			curNames = append(curNames, name)
		}
	}
	sort.Strings(curNames)
	for _, name := range curNames {
		fmt.Fprintf(w, "new: %s not in baseline (regenerate the snapshot to gate it)\n", name)
	}
	if regressed {
		fmt.Fprintln(w, "bench-compare: FAIL")
	} else {
		fmt.Fprintln(w, "bench-compare: ok")
	}
	return regressed
}
