// Package sleds is a complete, simulation-backed implementation of
// Storage Latency Estimation Descriptors (Van Meter & Gao, "Latency
// Management in Storage Systems", OSDI 2000).
//
// A SLED describes one contiguous section of a file together with the
// estimated latency to its first byte and the bandwidth at which the rest
// will arrive. Applications use the vector of SLEDs for an open file to
// reorder I/O (read cached data first), prune I/O (skip expensive
// retrievals), and report expected retrieval times.
//
// Because the original system is a modified Linux 2.2 kernel measured on
// real devices, this package ships the whole storage stack as a
// deterministic virtual-time simulation: device models (disk, CD-ROM,
// NFS, tape library), a page cache with LRU/CLOCK/FIFO replacement, a VFS
// with fault accounting, an lmbench-style calibrator that fills the
// kernel sleds table at boot, and the SLEDs kernel interface and user
// library on top. The System type bundles a booted machine.
//
//	sys, _ := sleds.NewSystem(sleds.Config{})          // 64 MB machine
//	sys.CreateTextFile("/data/f", sleds.OnDisk, 42, 32<<20)
//	f, _ := sys.Open("/data/f")
//	io.Copy(io.Discard, f)                              // warm the cache
//	v, _ := sys.SLEDs("/data/f")                        // FSLEDS_GET
//	p, _ := sys.NewPicker(f, sleds.PickOptions{})       // pick library
package sleds

import (
	"fmt"

	"sleds/internal/apps/appenv"
	"sleds/internal/cache"
	"sleds/internal/core"
	"sleds/internal/device"
	"sleds/internal/fits"
	"sleds/internal/hints"
	"sleds/internal/hsm"
	"sleds/internal/lmbench"
	"sleds/internal/simclock"
	"sleds/internal/sledlib"
	"sleds/internal/vfs"
	"sleds/internal/workload"
)

// Re-exported core types. SLED is the paper's struct sled; a Query
// returns a vector of them.
type (
	// SLED is one file section with retrieval estimates.
	SLED = core.SLED
	// Entry is one row of the kernel sleds table.
	Entry = core.Entry
	// Plan selects the attack plan of TotalDeliveryTime.
	Plan = core.Plan
	// File is an open simulated file descriptor (read/write/seek).
	File = vfs.File
	// Inode is file metadata.
	Inode = vfs.Inode
	// Picker is the pick-library scheduler for one open file.
	Picker = sledlib.Picker
	// PickOptions configures NewPicker (buffer size, record mode,
	// element mode, scheduling order).
	PickOptions = sledlib.Options
	// DeviceID names an attached device.
	DeviceID = device.ID
	// RunStats are the per-run kernel counters (faults, bytes, times).
	RunStats = vfs.RunStats
	// Policy selects the page-cache replacement algorithm.
	Policy = cache.Policy
	// Duration is virtual time in nanoseconds.
	Duration = simclock.Duration
)

// Attack plans for delivery-time estimates.
const (
	PlanLinear = core.PlanLinear
	PlanBest   = core.PlanBest
)

// Cache replacement policies.
const (
	LRU   = cache.LRU
	Clock = cache.Clock
	FIFO  = cache.FIFO
)

// ErrPickFinished is returned by Picker.NextRead when the schedule is
// exhausted.
var ErrPickFinished = sledlib.ErrFinished

// Standard devices attached by NewSystem, addressable by role.
const (
	// OnDisk places a file on the local hard disk (ext2 in the paper).
	OnDisk StandardDevice = iota
	// OnCDROM places a file on the CD-ROM (ISO9660; read-only).
	OnCDROM
	// OnNFS places a file on the NFS mount.
	OnNFS
	// OnTape places a file in the tape library (HSM experiments).
	OnTape
)

// StandardDevice selects one of the devices a default System boots with.
type StandardDevice int

// Config parameterises a System. The zero value gives the paper's Unix
// utilities machine: 4 KiB pages, ~44 MB of file cache, Table 2 device
// characteristics, LRU replacement.
type Config struct {
	// PageSize is the VM page size (default 4096).
	PageSize int
	// CacheBytes is the memory available to cache file pages (default
	// 44 MiB, the paper's 64 MB machine).
	CacheBytes int64
	// Policy is the replacement policy (default LRU).
	Policy Policy
	// ReadaheadPages adds readahead to demand faults (default 0).
	ReadaheadPages int
	// JitterFrac perturbs I/O times to model background activity
	// (default 0: fully deterministic). JitterSeed seeds it.
	JitterFrac float64
	JitterSeed int64
	// LHEAProfile selects the paper's Table 3 machine (faster memory,
	// slower disk) instead of the Table 2 one.
	LHEAProfile bool
	// WithHSM interposes a migrating tape->disk stager on tape files,
	// with the given staging capacity in bytes (0 disables).
	HSMStageBytes int64
}

// System is a booted simulated machine with a calibrated sleds table.
type System struct {
	k      *vfs.Kernel
	tab    *core.Table
	mem    device.Device
	ids    [4]device.ID
	stager *hsm.Stager
}

// NewSystem boots a machine: memory + disk + CD-ROM + NFS + tape devices,
// lmbench calibration filling the kernel sleds table, and an empty root
// with /data created.
func NewSystem(cfg Config) (*System, error) {
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 44 << 20
	}
	if cfg.CacheBytes < int64(cfg.PageSize) {
		return nil, fmt.Errorf("sleds: cache of %d bytes below one page", cfg.CacheBytes)
	}
	var memCfg device.MemConfig
	var diskCfg device.DiskConfig
	if cfg.LHEAProfile {
		memCfg, diskCfg = device.Table3MemConfig(0), device.Table3DiskConfig(1)
	} else {
		memCfg, diskCfg = device.Table2MemConfig(0), device.Table2DiskConfig(1)
	}
	mem := device.NewMem(memCfg)
	k := vfs.NewKernel(vfs.Config{
		PageSize:       cfg.PageSize,
		CachePages:     int(cfg.CacheBytes / int64(cfg.PageSize)),
		Policy:         cfg.Policy,
		ReadaheadPages: cfg.ReadaheadPages,
		MemDevice:      mem,
		JitterSeed:     cfg.JitterSeed,
		JitterFrac:     cfg.JitterFrac,
	})
	k.AttachDevice(mem)
	s := &System{k: k, mem: mem}
	s.ids[OnDisk] = k.AttachDevice(device.NewDisk(diskCfg))
	s.ids[OnCDROM] = k.AttachDevice(device.NewCDROM(device.DefaultCDROMConfig(2)))
	s.ids[OnNFS] = k.AttachDevice(device.NewNFS(device.DefaultNFSConfig(3)))
	s.ids[OnTape] = k.AttachDevice(device.NewTapeLibrary(device.DefaultTapeLibraryConfig(4)))
	if err := k.MkdirAll("/data"); err != nil {
		return nil, err
	}
	if cfg.HSMStageBytes > 0 {
		stager, err := hsm.New(k, hsm.Config{
			Tape:      s.ids[OnTape],
			Disk:      s.ids[OnDisk],
			BlockSize: 16 * int64(cfg.PageSize),
			Capacity:  cfg.HSMStageBytes,
		})
		if err != nil {
			return nil, err
		}
		s.stager = stager
	}
	tab, err := lmbench.Calibrate(k.Clock, mem, k.Devices.All())
	if err != nil {
		return nil, err
	}
	s.tab = tab
	return s, nil
}

// Device resolves a standard device role to its ID.
func (s *System) Device(d StandardDevice) DeviceID {
	if d < 0 || int(d) >= len(s.ids) {
		panic(fmt.Sprintf("sleds: unknown standard device %d", d))
	}
	return s.ids[d]
}

// Kernel exposes the underlying simulated kernel for advanced use
// (custom devices, direct cache inspection).
func (s *System) Kernel() *vfs.Kernel { return s.k }

// Table exposes the kernel sleds table.
func (s *System) Table() *core.Table { return s.tab }

// Now reports the machine's virtual time.
func (s *System) Now() Duration { return s.k.Clock.Now() }

// Stats snapshots the per-run counters; ResetStats zeroes them.
func (s *System) Stats() RunStats { return s.k.RunStats() }

// ResetStats zeroes the per-run counters.
func (s *System) ResetStats() { s.k.ResetRunStats() }

// DropCaches empties the page cache (after writing dirty pages back).
func (s *System) DropCaches() { s.k.DropCaches() }

// MkdirAll creates a directory path.
func (s *System) MkdirAll(path string) error { return s.k.MkdirAll(path) }

// CreateTextFile creates a deterministic pseudo-text file of the given
// size on the device. The same seed always produces the same bytes.
func (s *System) CreateTextFile(path string, on StandardDevice, seed uint64, size int64) error {
	_, err := s.k.Create(path, s.Device(on), workload.NewText(seed, size, s.k.PageSize()))
	return err
}

// CreateTextFileWithMatches creates a pseudo-text file with a line
// containing needle spliced in at each of the given byte offsets (the
// generator itself never produces the needle, so these are the only
// occurrences). Used to stage grep experiments.
func (s *System) CreateTextFileWithMatches(path string, on StandardDevice, seed uint64, size int64, needle string, offsets ...int64) error {
	c := workload.NewText(seed, size, s.k.PageSize())
	for _, off := range offsets {
		workload.PlantMatch(c, off, needle)
	}
	_, err := s.k.Create(path, s.Device(on), c)
	return err
}

// CreateFITSImage creates a synthetic FITS image (16-bit pixels) of the
// given dimensions on the device.
func (s *System) CreateFITSImage(path string, on StandardDevice, seed uint64, width, height int) error {
	im, err := fits.NewImage(width, height, 16)
	if err != nil {
		return err
	}
	_, err = s.k.Create(path, s.Device(on), fits.NewContent(im, seed, s.k.PageSize()))
	return err
}

// CreateEmptyFile creates a zero-length writable file on the device.
func (s *System) CreateEmptyFile(path string, on StandardDevice) error {
	_, err := s.k.CreateEmpty(path, s.Device(on))
	return err
}

// Remove deletes a file or empty directory.
func (s *System) Remove(path string) error { return s.k.Remove(path) }

// Open opens a file.
func (s *System) Open(path string) (*File, error) { return s.k.Open(path) }

// Stat resolves a path to its inode.
func (s *System) Stat(path string) (*Inode, error) { return s.k.Stat(path) }

// SLEDs performs the FSLEDS_GET query for the file at path: the vector of
// latency/bandwidth descriptors for its current storage state.
func (s *System) SLEDs(path string) ([]SLED, error) {
	n, err := s.k.Stat(path)
	if err != nil {
		return nil, err
	}
	return core.Query(s.k, s.tab, n)
}

// NewPicker builds a pick-library schedule for an open file
// (sleds_pick_init).
func (s *System) NewPicker(f *File, opts PickOptions) (*Picker, error) {
	return sledlib.PickInit(s.k, s.tab, f, opts)
}

// TotalDeliveryTime estimates seconds to read the whole file under the
// given plan (sleds_total_delivery_time).
func (s *System) TotalDeliveryTime(path string, plan Plan) (float64, error) {
	n, err := s.k.Stat(path)
	if err != nil {
		return 0, err
	}
	return sledlib.TotalDeliveryTime(s.k, s.tab, n, plan)
}

// WillNeed discloses that [off, off+length) of the open file will be read
// soon; the kernel schedules asynchronous prefetch on the device's
// background timeline (the hints flow of the paper's Figure 1, provided
// for comparison and combination with SLEDs).
func (s *System) WillNeed(f *File, off, length int64) {
	hints.New(s.k).WillNeed(f, off, length)
}

// DontNeed discloses that [off, off+length) will not be reused; the
// kernel may drop those pages immediately.
func (s *System) DontNeed(f *File, off, length int64) {
	hints.New(s.k).DontNeed(f, off, length)
}

// Env builds the application environment used by the ported utilities in
// internal/apps (wc, grep, find, gmc, fimhisto, fimgbin).
func (s *System) Env(useSLEDs bool) *appenv.Env {
	return &appenv.Env{K: s.k, Table: s.tab, UseSLEDs: useSLEDs}
}
