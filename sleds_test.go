package sleds_test

import (
	"errors"
	"io"
	"testing"

	"sleds"
)

func newSystem(t testing.TB, cfg sleds.Config) *sleds.System {
	t.Helper()
	sys, err := sleds.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// small returns a config with a 64 KiB cache for fast eviction tests.
func small() sleds.Config { return sleds.Config{CacheBytes: 64 << 10} }

func TestDefaultSystemBoots(t *testing.T) {
	sys := newSystem(t, sleds.Config{})
	if sys.Now() <= 0 {
		t.Fatalf("calibration took no virtual time")
	}
	memE, ok := sys.Table().Memory()
	if !ok || memE.Bandwidth <= 0 {
		t.Fatalf("table not calibrated: %+v %v", memE, ok)
	}
	for _, d := range []sleds.StandardDevice{sleds.OnDisk, sleds.OnCDROM, sleds.OnNFS, sleds.OnTape} {
		if _, ok := sys.Table().Device(sys.Device(d)); !ok {
			t.Fatalf("device %d has no table entry", d)
		}
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := sleds.NewSystem(sleds.Config{CacheBytes: 100}); err == nil {
		t.Fatalf("sub-page cache accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	sys := newSystem(t, small())
	if err := sys.CreateTextFile("/data/f", sleds.OnDisk, 42, 32<<10*8); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("/data/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := io.Copy(io.Discard, f); err != nil {
		t.Fatal(err)
	}

	v, err := sys.SLEDs("/data/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) < 2 {
		t.Fatalf("warm over-cache file has %d SLEDs, want >= 2", len(v))
	}

	p, err := sys.NewPicker(f, sleds.PickOptions{BufSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Finish()
	var total int64
	for {
		off, n, err := p.NextRead()
		if errors.Is(err, sleds.ErrPickFinished) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		total += n
	}
	if total != f.Size() {
		t.Fatalf("picker covered %d of %d bytes", total, f.Size())
	}
}

func TestDeliveryTimeDropsWhenCached(t *testing.T) {
	sys := newSystem(t, small())
	sys.CreateTextFile("/data/f", sleds.OnNFS, 1, 8<<10)
	cold, err := sys.TotalDeliveryTime("/data/f", sleds.PlanLinear)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := sys.Open("/data/f")
	io.Copy(io.Discard, f)
	f.Close()
	warm, _ := sys.TotalDeliveryTime("/data/f", sleds.PlanLinear)
	if warm*100 > cold {
		t.Fatalf("warm %v not ≪ cold %v", warm, cold)
	}
}

func TestStatsAndDropCaches(t *testing.T) {
	sys := newSystem(t, small())
	sys.CreateTextFile("/data/f", sleds.OnDisk, 2, 8*4096)
	f, _ := sys.Open("/data/f")
	defer f.Close()
	sys.ResetStats()
	io.Copy(io.Discard, f)
	if sys.Stats().Faults != 8 {
		t.Fatalf("faults = %d, want 8", sys.Stats().Faults)
	}
	sys.DropCaches()
	sys.ResetStats()
	f.Seek(0, io.SeekStart)
	io.Copy(io.Discard, f)
	if sys.Stats().Faults != 8 {
		t.Fatalf("faults after DropCaches = %d, want 8", sys.Stats().Faults)
	}
}

func TestFITSImageCreation(t *testing.T) {
	sys := newSystem(t, sleds.Config{LHEAProfile: true})
	if err := sys.CreateFITSImage("/data/img.fits", sleds.OnDisk, 7, 256, 64); err != nil {
		t.Fatal(err)
	}
	n, err := sys.Stat("/data/img.fits")
	if err != nil {
		t.Fatal(err)
	}
	if n.Size() < 256*64*2 {
		t.Fatalf("image too small: %d", n.Size())
	}
}

func TestHSMSystem(t *testing.T) {
	sys := newSystem(t, sleds.Config{CacheBytes: 64 << 10, HSMStageBytes: 1 << 20})
	sys.CreateTextFile("/data/t", sleds.OnTape, 3, 256<<10)
	f, _ := sys.Open("/data/t")
	defer f.Close()
	buf := make([]byte, 64<<10)
	f.ReadAt(buf, 0)
	sys.DropCaches()
	v, err := sys.SLEDs("/data/t")
	if err != nil {
		t.Fatal(err)
	}
	// The staged head reports disk-level latency; the unread tail tape.
	if len(v) < 2 {
		t.Fatalf("HSM file SLEDs = %v", v)
	}
	if v[0].Latency >= v[len(v)-1].Latency {
		t.Fatalf("staged head not cheaper than tape tail: %v", v)
	}
}

func TestWritableFiles(t *testing.T) {
	sys := newSystem(t, small())
	if err := sys.CreateEmptyFile("/data/out", sleds.OnDisk); err != nil {
		t.Fatal(err)
	}
	f, _ := sys.Open("/data/out")
	defer f.Close()
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Remove("/data/out"); err != nil {
		t.Fatal(err)
	}
}

func TestEnvRunsPortedApps(t *testing.T) {
	sys := newSystem(t, small())
	sys.CreateTextFile("/data/f", sleds.OnDisk, 9, 64<<10)
	env := sys.Env(true)
	if env.K == nil || env.Table == nil || !env.UseSLEDs {
		t.Fatalf("env incomplete")
	}
}

func TestHintsThroughFacade(t *testing.T) {
	sys := newSystem(t, small())
	sys.CreateTextFile("/data/f", sleds.OnDisk, 5, 8*4096)
	f, _ := sys.Open("/data/f")
	defer f.Close()
	sys.ResetStats()
	sys.WillNeed(f, 0, 8*4096)
	if sys.Stats().PrefetchIssued != 8 {
		t.Fatalf("PrefetchIssued = %d, want 8", sys.Stats().PrefetchIssued)
	}
	buf := make([]byte, 8*4096)
	f.ReadAt(buf, 0)
	if sys.Stats().Faults != 0 {
		t.Fatalf("hinted read faulted %d pages", sys.Stats().Faults)
	}
	sys.DontNeed(f, 0, 8*4096)
	n, _ := sys.Stat("/data/f")
	if sys.Kernel().PageResident(n, 0) {
		t.Fatalf("pages survive DontNeed")
	}
}
