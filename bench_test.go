// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B benchmark per artifact, at the quick scale
// (~16x smaller than the paper, same cache-to-file-size ratios and thus
// the same curve shapes). The reported metrics are the interesting
// scientific quantities, attached via b.ReportMetric:
//
//   - speedup-peak / speedup-last: the Figure 8/12 improvement ratios
//   - fault-reduction: Figure 9's headline
//   - time-reduction-pct: Figures 14/15
//
// Run with: go test -bench=. -benchmem
//
// cmd/sledsbench regenerates the same artifacts at full paper scale and
// prints the complete tables; EXPERIMENTS.md records those numbers.
package sleds_test

import (
	"testing"

	"sleds/internal/experiments"
)

// benchConfig is the quick-scale configuration with fewer repetitions, so
// one benchmark iteration is one full experiment regeneration.
func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Runs = 3
	cfg.CDFRuns = 8
	return cfg
}

func maxMean(s experiments.Series) float64 {
	var m float64
	for _, p := range s.Points {
		if p.Mean > m {
			m = p.Mean
		}
	}
	return m
}

func lastReduction(f experiments.Figure) float64 {
	with, without := f.Series[0], f.Series[1]
	last := len(with.Points) - 1
	return 100 * (1 - with.Points[last].Mean/without.Points[last].Mean)
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Fig3Trace(); out == "" {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkFig7And8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, f8, err := experiments.Fig7And8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(maxMean(f8.Series[0]), "speedup-peak")
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f9, err := experiments.Fig9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		with, without := f9.Series[0], f9.Series[1]
		last := len(with.Points) - 1
		b.ReportMetric(100*(1-with.Points[last].Mean/without.Points[last].Mean), "fault-reduction-pct")
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f10, err := experiments.Fig10(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastReduction(f10), "time-reduction-pct")
	}
}

func BenchmarkFig11And12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, f12, err := experiments.Fig11And12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(maxMean(f12.Series[0]), "speedup-peak")
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f13, err := experiments.Fig13(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Median gap between the two quantile curves.
		mid := len(f13.Series[0].Points) / 2
		b.ReportMetric(f13.Series[1].Points[mid].Mean-f13.Series[0].Points[mid].Mean, "median-gap-sec")
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f14, err := experiments.Fig14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastReduction(f14), "time-reduction-pct")
	}
}

func BenchmarkFig15x4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig15Factor(benchConfig(), 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastReduction(f), "time-reduction-pct")
	}
}

func BenchmarkFig15x16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig15Factor(benchConfig(), 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastReduction(f), "time-reduction-pct")
	}
}

func BenchmarkEFind(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EFind(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEGmc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EGmc(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEHSM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.EHSM(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup, "hsm-speedup")
	}
}

func BenchmarkERemote(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ERemote(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup, "remote-speedup")
	}
}

func BenchmarkEHints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.EHints(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		pts := f.Series[0].Points
		b.ReportMetric(pts[0].Mean/pts[3].Mean, "combined-speedup")
	}
}

func BenchmarkETreeGrep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.ETreeGrep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		times := f.Series[0].Points
		b.ReportMetric(times[0].Mean/times[2].Mean, "sleds-vs-nameorder")
	}
}

func BenchmarkEAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Sizes = cfg.Sizes[:4]
		f, err := experiments.EAccuracy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, s := range f.Series {
			for _, p := range s.Points {
				if e := p.Mean; e > worst || -e > worst {
					if e < 0 {
						e = -e
					}
					worst = e
				}
			}
		}
		b.ReportMetric(worst, "worst-estimate-error-pct")
	}
}

func BenchmarkAblationMmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMmap(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationZones(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationZones(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPolicy(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPickOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPickOrder(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRefresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRefresh(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationReadahead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationReadahead(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
