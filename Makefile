# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs
# the same checks the workflow does, in the same order.

GO ?= go

.PHONY: build vet fmt test race bench determinism ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (like CI) if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# determinism regenerates the quick-scale evaluation serially and with a
# 4-worker pool and fails on any stdout byte difference, guarding the
# per-point seed derivation and the index-ordered reduce.
determinism:
	$(GO) run ./cmd/sledsbench -scale quick -workers 1 > /tmp/sledsbench-w1.txt
	$(GO) run ./cmd/sledsbench -scale quick -workers 4 > /tmp/sledsbench-w4.txt
	diff /tmp/sledsbench-w1.txt /tmp/sledsbench-w4.txt
	@echo "deterministic: quick-scale output is byte-identical at 1 and 4 workers"

ci: build vet fmt test race determinism
