# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs
# the same checks the workflow does, in the same order.

GO ?= go
STATICCHECK_VERSION ?= 2025.1

.PHONY: build vet fmt staticcheck lint lint-debt lint-sarif test race bench bench-smoke bench-json bench-compare scale-smoke determinism faults-smoke trace-smoke fleet-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (like CI) if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# staticcheck runs pinned via the module cache; no checked-in tool
# dependency. Needs network on the first run to fetch the tool.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# lint runs sledlint, the in-repo determinism and dataflow linter
# (cmd/sledlint): the syntactic rules (wallclock, rngsource, mapiter,
# panicpath, simtime) plus the inter-procedural ones (seedflow,
# errflow, hotalloc), over the whole module with test files included,
# gated against the committed baseline (lint-baseline.json; currently
# empty — no accepted debt). Suppressions need
# //sledlint:allow <rule> -- <reason>; `make lint-debt` lists them.
lint:
	$(GO) run ./cmd/sledlint -tests -baseline lint-baseline.json ./...

# lint-debt inventories every //sledlint:allow directive with its
# reason — the full cost of the suppression mechanism, in one page.
lint-debt:
	$(GO) run ./cmd/sledlint -debt ./...

# lint-sarif renders the same run as SARIF 2.1.0 for code-scanning
# UIs. Informational (never fails): the gate is `make lint`.
lint-sarif:
	$(GO) run ./cmd/sledlint -tests -sarif ./... > sledlint.sarif; true

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# bench-smoke runs every microbenchmark for a single iteration so CI
# catches benchmarks that panic or fail setup without paying for stable
# timings.
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./internal/core ./internal/cache ./internal/iosched ./internal/trace ./internal/fleet

# bench-json regenerates BENCH_10.json, the committed snapshot of the
# query/cache/iosched/trace/fleet microbenchmarks and the root figure
# benchmarks, as a JSON map of benchmark name to ns/op, B/op, allocs/op
# and ReportMetric figures. Timings vary by machine; the snapshot exists
# to pin the alloc counts (which bench-compare gates) and record the
# measured speedups at authoring time. Run it on a bench-suite change
# and commit the result. BENCH_5.json through BENCH_8.json are the
# frozen PR-5..PR-8 snapshots; leave them be.
bench-json:
	{ $(GO) test -bench=. -benchmem -run='^$$' ./internal/core ./internal/cache ./internal/iosched ./internal/trace ./internal/fleet; \
	  $(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' .; } | $(GO) run ./cmd/benchjson > BENCH_10.json
	@echo "bench-json: wrote BENCH_10.json"

# bench-compare reruns the bench-json suite and gates it against the
# committed BENCH_10.json snapshot: every benchmark in the snapshot must
# still exist, and allocs/op may not grow more than 25%. Only alloc
# counts are gated — they are deterministic for these workloads, while
# ns/op on shared CI runners is noise.
bench-compare:
	{ $(GO) test -bench=. -benchmem -run='^$$' ./internal/core ./internal/cache ./internal/iosched ./internal/trace ./internal/fleet; \
	  $(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' .; } | $(GO) run ./cmd/benchjson -compare BENCH_10.json -tolerance 0.25

# scale-smoke proves the event-heap engine at full width: the escale
# experiment (up to 10,000 streams over 24 queued disks, fcfs and sstf)
# must complete at quick scale and print byte-identical figures at 1 and
# 4 workers. escale is deliberately outside "all", so this is the only
# place it runs.
scale-smoke:
	$(GO) run ./cmd/sledsbench -scale quick -exp escale -workers 1 > /tmp/sledsbench-escale-w1.txt
	$(GO) run ./cmd/sledsbench -scale quick -exp escale -workers 4 > /tmp/sledsbench-escale-w4.txt
	diff /tmp/sledsbench-escale-w1.txt /tmp/sledsbench-escale-w4.txt
	@echo "scale-smoke: 10,000-stream escale is byte-identical at 1 and 4 workers"

# determinism regenerates the quick-scale evaluation serially and with a
# 4-worker pool and fails on any stdout byte difference, guarding the
# per-point seed derivation and the index-ordered reduce.
determinism:
	$(GO) run ./cmd/sledsbench -scale quick -workers 1 > /tmp/sledsbench-w1.txt
	$(GO) run ./cmd/sledsbench -scale quick -workers 4 > /tmp/sledsbench-w4.txt
	diff /tmp/sledsbench-w1.txt /tmp/sledsbench-w4.txt
	@echo "deterministic: quick-scale output is byte-identical at 1 and 4 workers"
	diff experiments_quick_scale.txt /tmp/sledsbench-w1.txt
	@echo "deterministic: quick-scale output matches the committed golden"
	$(GO) run ./cmd/sledsbench -scale quick -exp econtend,eloadsled -workers 1 > /tmp/sledsbench-contend-w1.txt
	$(GO) run ./cmd/sledsbench -scale quick -exp econtend,eloadsled -workers 4 > /tmp/sledsbench-contend-w4.txt
	diff /tmp/sledsbench-contend-w1.txt /tmp/sledsbench-contend-w4.txt
	@echo "deterministic: contention experiments are byte-identical at 1 and 4 workers"
	$(GO) run ./cmd/sledsbench -scale quick -exp efaults -runs 2 -faults heavy -workers 1 > /tmp/sledsbench-faults-w1.txt
	$(GO) run ./cmd/sledsbench -scale quick -exp efaults -runs 2 -faults heavy -workers 4 > /tmp/sledsbench-faults-w4.txt
	diff /tmp/sledsbench-faults-w1.txt /tmp/sledsbench-faults-w4.txt
	@echo "deterministic: fault injection is byte-identical at 1 and 4 workers"
	$(GO) run ./cmd/sledsbench -scale quick -exp etrace,efleet -sledmemo on > /tmp/sledsbench-memo-on.txt
	$(GO) run ./cmd/sledsbench -scale quick -exp etrace,efleet -sledmemo off > /tmp/sledsbench-memo-off.txt
	diff /tmp/sledsbench-memo-on.txt /tmp/sledsbench-memo-off.txt
	@echo "deterministic: etrace and efleet are byte-identical with the SLED skeleton memo on and off"

# trace-smoke drives the trace subsystem end to end: sledstrace
# generates a trace, validates its own output, and the etrace experiment
# (every workload class × {fcfs,sstf,deadline} × SLED on/off) replays at
# quick scale with byte-identical figures at 1 and 4 workers. etrace is
# deliberately outside "all" (like escale), so this is the only place it
# runs.
trace-smoke:
	$(GO) run ./cmd/sledstrace gen -class mixed -seed 7 -o /tmp/sledstrace-smoke.sledtrace
	$(GO) run ./cmd/sledstrace validate /tmp/sledstrace-smoke.sledtrace
	$(GO) run ./cmd/sledsbench -scale quick -exp etrace -workers 1 > /tmp/sledsbench-etrace-w1.txt
	$(GO) run ./cmd/sledsbench -scale quick -exp etrace -workers 4 > /tmp/sledsbench-etrace-w4.txt
	diff /tmp/sledsbench-etrace-w1.txt /tmp/sledsbench-etrace-w4.txt
	@echo "trace-smoke: etrace replay is byte-identical at 1 and 4 workers"

# fleet-smoke drives the fleet tier end to end: the efleet experiment
# (3 scenarios x {rr, sled, hedge} over a 4-replica fleet) must complete
# at quick scale and print byte-identical reports at 1 and 4 workers.
# efleet is deliberately outside "all" (like escale and etrace), so this
# is the only place it runs.
fleet-smoke:
	$(GO) run ./cmd/sledsbench -scale quick -exp efleet -workers 1 > /tmp/sledsbench-efleet-w1.txt
	$(GO) run ./cmd/sledsbench -scale quick -exp efleet -workers 4 > /tmp/sledsbench-efleet-w4.txt
	diff /tmp/sledsbench-efleet-w1.txt /tmp/sledsbench-efleet-w4.txt
	@echo "fleet-smoke: efleet is byte-identical at 1 and 4 workers"

# faults-smoke drives the fault-injection path end to end: the efaults
# experiment at quick scale with the heavy profile stacked over every
# device of every machine. Every injected fault must be retried or
# surfaced as EIO — a panic anywhere on the fault path fails the target.
faults-smoke: vet
	$(GO) run ./cmd/sledsbench -scale quick -exp efaults -runs 2 -faults heavy > /dev/null
	@echo "faults-smoke: efaults completed with heavy injection on every device"

ci: build vet fmt staticcheck lint test race bench-smoke bench-compare scale-smoke determinism faults-smoke trace-smoke fleet-smoke
