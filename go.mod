module sleds

go 1.22
