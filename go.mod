module sleds

go 1.22

// No third-party requirements by design: the build must succeed with an
// empty module cache and no network access. That is why cmd/sledlint is
// built on a minimal stdlib-only mirror of golang.org/x/tools/go/analysis
// (internal/lint/analysis) instead of a pinned x/tools dependency — see
// DESIGN.md "Static invariants". If a network-enabled toolchain ever
// adopts the real x/tools, pin it here and swap the imports mechanically.
